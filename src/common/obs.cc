#include "common/obs.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iomanip>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <sstream>
#include <utility>

#include "common/table.h"

namespace gaia::obs {

namespace detail {

std::atomic<bool> tracing_enabled{false};
std::atomic<bool> detailed_timing{false};

unsigned
stripeSlot()
{
    static std::atomic<unsigned> next{0};
    thread_local unsigned slot =
        next.fetch_add(1, std::memory_order_relaxed) % kCounterStripes;
    return slot;
}

namespace {

std::chrono::steady_clock::time_point
traceEpoch()
{
    static const auto epoch = std::chrono::steady_clock::now();
    return epoch;
}

/** Touch the epoch early so timestamps start near zero. */
const auto epoch_initialized = traceEpoch();

} // namespace

std::uint64_t
nowMicros()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - traceEpoch())
            .count());
}

} // namespace detail

// ---------------------------------------------------------------------------
// Histogram

int
Histogram::bucketFor(double value)
{
    if (!(value > 0.0))
        return 0;
    const int raw = std::ilogb(value) + kBucketBias + 1;
    return std::clamp(raw, 0, kBuckets - 1);
}

void
Histogram::observe(double value)
{
    buckets_[static_cast<std::size_t>(bucketFor(value))].fetch_add(
        1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);

    if (!any_.exchange(true, std::memory_order_acq_rel)) {
        min_.store(value, std::memory_order_relaxed);
        max_.store(value, std::memory_order_relaxed);
        return;
    }
    double seen = min_.load(std::memory_order_relaxed);
    while (value < seen &&
           !min_.compare_exchange_weak(seen, value,
                                       std::memory_order_relaxed))
        ;
    seen = max_.load(std::memory_order_relaxed);
    while (value > seen &&
           !max_.compare_exchange_weak(seen, value,
                                       std::memory_order_relaxed))
        ;
}

double
Histogram::min() const
{
    return any_.load(std::memory_order_acquire)
               ? min_.load(std::memory_order_relaxed)
               : 0.0;
}

double
Histogram::max() const
{
    return any_.load(std::memory_order_acquire)
               ? max_.load(std::memory_order_relaxed)
               : 0.0;
}

double
Histogram::quantile(double q) const
{
    const std::uint64_t n = count();
    if (n == 0)
        return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    const auto rank =
        static_cast<std::uint64_t>(q * static_cast<double>(n - 1));

    std::uint64_t seen = 0;
    for (int b = 0; b < kBuckets; ++b) {
        seen += buckets_[static_cast<std::size_t>(b)].load(
            std::memory_order_relaxed);
        if (seen > rank) {
            // Report the bucket's upper edge, clamped to the exact
            // observed range so estimates never exceed reality.
            const double upper = std::ldexp(1.0, b - kBucketBias);
            return std::clamp(upper, min(), max());
        }
    }
    return max();
}

void
Histogram::reset()
{
    for (auto &bucket : buckets_)
        bucket.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0.0, std::memory_order_relaxed);
    min_.store(0.0, std::memory_order_relaxed);
    max_.store(0.0, std::memory_order_relaxed);
    any_.store(false, std::memory_order_release);
}

// ---------------------------------------------------------------------------
// MetricsRegistry

struct MetricsRegistry::Impl
{
    mutable std::mutex mutex;
    // node-based maps: element addresses are stable across inserts,
    // which is what lets callers cache the returned references.
    std::map<std::string, Counter, std::less<>> counters;
    std::map<std::string, Gauge, std::less<>> gauges;
    std::map<std::string, Histogram, std::less<>> histograms;
};

MetricsRegistry &
MetricsRegistry::instance()
{
    static MetricsRegistry registry;
    return registry;
}

MetricsRegistry::Impl &
MetricsRegistry::impl() const
{
    // Leaked intentionally: instrumented subsystems may flush
    // metrics from destructors of other static-duration objects.
    static Impl *impl = new Impl;
    return *impl;
}

Counter &
MetricsRegistry::counter(std::string_view name)
{
    Impl &state = impl();
    std::lock_guard<std::mutex> lock(state.mutex);
    auto it = state.counters.find(name);
    if (it == state.counters.end())
        it = state.counters.try_emplace(std::string(name)).first;
    return it->second;
}

Gauge &
MetricsRegistry::gauge(std::string_view name)
{
    Impl &state = impl();
    std::lock_guard<std::mutex> lock(state.mutex);
    auto it = state.gauges.find(name);
    if (it == state.gauges.end())
        it = state.gauges.try_emplace(std::string(name)).first;
    return it->second;
}

Histogram &
MetricsRegistry::histogram(std::string_view name)
{
    Impl &state = impl();
    std::lock_guard<std::mutex> lock(state.mutex);
    auto it = state.histograms.find(name);
    if (it == state.histograms.end())
        it = state.histograms.try_emplace(std::string(name)).first;
    return it->second;
}

MetricsSnapshot
MetricsRegistry::snapshot() const
{
    Impl &state = impl();
    std::lock_guard<std::mutex> lock(state.mutex);

    MetricsSnapshot snap;
    snap.counters.reserve(state.counters.size());
    for (const auto &[name, counter] : state.counters)
        snap.counters.push_back({name, counter.value()});

    snap.gauges.reserve(state.gauges.size());
    for (const auto &[name, gauge] : state.gauges)
        snap.gauges.push_back({name, gauge.value()});

    snap.histograms.reserve(state.histograms.size());
    for (const auto &[name, hist] : state.histograms) {
        HistogramSnapshot h;
        h.name = name;
        h.count = hist.count();
        h.sum = hist.sum();
        h.min = hist.min();
        h.max = hist.max();
        h.p50 = hist.quantile(0.50);
        h.p95 = hist.quantile(0.95);
        h.p99 = hist.quantile(0.99);
        snap.histograms.push_back(std::move(h));
    }
    return snap;
}

void
MetricsRegistry::reset()
{
    Impl &state = impl();
    std::lock_guard<std::mutex> lock(state.mutex);
    for (auto &[name, counter] : state.counters)
        counter.reset();
    for (auto &[name, gauge] : state.gauges)
        gauge.reset();
    for (auto &[name, hist] : state.histograms)
        hist.reset();
}

std::uint64_t
MetricsSnapshot::counterValue(std::string_view name) const
{
    for (const CounterSnapshot &c : counters)
        if (c.name == name)
            return c.value;
    return 0;
}

Counter &
counter(std::string_view name)
{
    return MetricsRegistry::instance().counter(name);
}

Gauge &
gauge(std::string_view name)
{
    return MetricsRegistry::instance().gauge(name);
}

Histogram &
histogram(std::string_view name)
{
    return MetricsRegistry::instance().histogram(name);
}

MetricsSnapshot
metricsSnapshot()
{
    return MetricsRegistry::instance().snapshot();
}

void
resetMetrics()
{
    MetricsRegistry::instance().reset();
}

// ---------------------------------------------------------------------------
// Metrics serialization

namespace {

void
appendJsonEscaped(std::ostream &out, std::string_view text)
{
    for (char c : text) {
        switch (c) {
        case '"':
            out << "\\\"";
            break;
        case '\\':
            out << "\\\\";
            break;
        case '\n':
            out << "\\n";
            break;
        case '\t':
            out << "\\t";
            break;
        case '\r':
            out << "\\r";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned>(c));
                out << buf;
            } else {
                out << c;
            }
        }
    }
}

std::string
jsonNumber(double value)
{
    if (!std::isfinite(value))
        return "0";
    std::ostringstream out;
    out << std::setprecision(17) << value;
    return out.str();
}

} // namespace

void
writeMetricsJson(std::ostream &out, const MetricsSnapshot &snapshot)
{
    out << "{\n  \"counters\": {";
    for (std::size_t i = 0; i < snapshot.counters.size(); ++i) {
        out << (i ? ",\n    \"" : "\n    \"");
        appendJsonEscaped(out, snapshot.counters[i].name);
        out << "\": " << snapshot.counters[i].value;
    }
    out << (snapshot.counters.empty() ? "},\n" : "\n  },\n");

    out << "  \"gauges\": {";
    for (std::size_t i = 0; i < snapshot.gauges.size(); ++i) {
        out << (i ? ",\n    \"" : "\n    \"");
        appendJsonEscaped(out, snapshot.gauges[i].name);
        out << "\": " << snapshot.gauges[i].value;
    }
    out << (snapshot.gauges.empty() ? "},\n" : "\n  },\n");

    out << "  \"histograms\": {";
    for (std::size_t i = 0; i < snapshot.histograms.size(); ++i) {
        const HistogramSnapshot &h = snapshot.histograms[i];
        out << (i ? ",\n    \"" : "\n    \"");
        appendJsonEscaped(out, h.name);
        out << "\": {\"count\": " << h.count
            << ", \"sum\": " << jsonNumber(h.sum)
            << ", \"min\": " << jsonNumber(h.min)
            << ", \"max\": " << jsonNumber(h.max)
            << ", \"p50\": " << jsonNumber(h.p50)
            << ", \"p95\": " << jsonNumber(h.p95)
            << ", \"p99\": " << jsonNumber(h.p99) << "}";
    }
    out << (snapshot.histograms.empty() ? "}\n" : "\n  }\n");
    out << "}\n";
}

bool
writeMetricsJson(const std::string &path)
{
    std::ofstream out(path);
    if (!out) {
        std::fprintf(stderr, "gaia: cannot open metrics sink %s\n",
                     path.c_str());
        return false;
    }
    writeMetricsJson(out, metricsSnapshot());
    out.flush();
    if (!out) {
        std::fprintf(stderr, "gaia: failed writing metrics to %s\n",
                     path.c_str());
        return false;
    }
    return true;
}

void
printMetricsSummary(std::ostream &out, const MetricsSnapshot &snapshot)
{
    if (!snapshot.counters.empty() || !snapshot.gauges.empty()) {
        TextTable table("metrics", {"metric", "value"});
        for (const CounterSnapshot &c : snapshot.counters)
            table.addRow({c.name, std::to_string(c.value)});
        for (const GaugeSnapshot &g : snapshot.gauges)
            table.addRow({g.name, std::to_string(g.value)});
        table.print(out);
    }
    if (!snapshot.histograms.empty()) {
        TextTable table(
            "histograms",
            {"histogram", "count", "sum", "p50", "p95", "max"});
        auto fmt = [](double v) {
            std::ostringstream s;
            s << std::setprecision(4) << v;
            return s.str();
        };
        for (const HistogramSnapshot &h : snapshot.histograms)
            table.addRow({h.name, std::to_string(h.count),
                          fmt(h.sum), fmt(h.p50), fmt(h.p95),
                          fmt(h.max)});
        table.print(out);
    }
}

// ---------------------------------------------------------------------------
// Tracer

namespace {

/** One recorded complete span. */
struct TraceEvent
{
    const char *name = nullptr;
    std::string label;
    std::uint64_t start_us = 0;
    std::uint64_t dur_us = 0;
};

/**
 * One thread's span ring. Owned jointly by the recording thread
 * (thread_local shared_ptr) and the global track registry, so the
 * spans survive the thread's exit and appear in the final JSON.
 */
struct ThreadTrack
{
    explicit ThreadTrack(std::size_t capacity)
        : ring(capacity)
    {
    }

    std::mutex mutex;
    std::string name;
    std::vector<TraceEvent> ring;
    std::size_t next = 0;
    std::size_t used = 0;
    std::uint64_t dropped = 0;
};

struct TrackRegistry
{
    std::mutex mutex;
    std::vector<std::shared_ptr<ThreadTrack>> tracks;
    std::size_t ring_capacity = 32768;
};

TrackRegistry &
trackRegistry()
{
    static TrackRegistry *registry = new TrackRegistry;
    return *registry;
}

ThreadTrack &
thisThreadTrack()
{
    thread_local std::shared_ptr<ThreadTrack> track = [] {
        TrackRegistry &registry = trackRegistry();
        std::lock_guard<std::mutex> lock(registry.mutex);
        auto created =
            std::make_shared<ThreadTrack>(registry.ring_capacity);
        registry.tracks.push_back(created);
        return created;
    }();
    return *track;
}

} // namespace

namespace detail {

void
recordSpan(const char *name, std::string &&label,
           std::uint64_t start_us, std::uint64_t end_us)
{
    ThreadTrack &track = thisThreadTrack();
    std::lock_guard<std::mutex> lock(track.mutex);
    if (track.ring.empty())
        return;
    TraceEvent &slot = track.ring[track.next];
    if (track.used == track.ring.size())
        ++track.dropped;
    else
        ++track.used;
    slot.name = name;
    slot.label = std::move(label);
    slot.start_us = start_us;
    slot.dur_us = end_us > start_us ? end_us - start_us : 0;
    track.next = (track.next + 1) % track.ring.size();
}

} // namespace detail

void
setTracingEnabled(bool enabled)
{
    detail::tracing_enabled.store(enabled, std::memory_order_relaxed);
}

void
setDetailedTiming(bool enabled)
{
    detail::detailed_timing.store(enabled, std::memory_order_relaxed);
}

void
setThreadTrackName(std::string name)
{
    ThreadTrack &track = thisThreadTrack();
    std::lock_guard<std::mutex> lock(track.mutex);
    track.name = std::move(name);
}

void
setTraceRingCapacity(std::size_t capacity)
{
    TrackRegistry &registry = trackRegistry();
    std::lock_guard<std::mutex> lock(registry.mutex);
    registry.ring_capacity = std::max<std::size_t>(capacity, 1);
}

void
writeTraceJson(std::ostream &out)
{
    // Snapshot the track list, then serialize each track under its
    // own lock; recording threads only block for their own track.
    std::vector<std::shared_ptr<ThreadTrack>> tracks;
    {
        TrackRegistry &registry = trackRegistry();
        std::lock_guard<std::mutex> lock(registry.mutex);
        tracks = registry.tracks;
    }

    out << "{\"traceEvents\": [";
    bool first = true;
    std::size_t tid = 0;
    for (const auto &track_ptr : tracks) {
        ++tid;
        ThreadTrack &track = *track_ptr;
        std::lock_guard<std::mutex> lock(track.mutex);

        out << (first ? "\n" : ",\n");
        first = false;
        out << R"({"ph": "M", "pid": 1, "tid": )" << tid
            << R"(, "name": "thread_name", "args": {"name": ")";
        if (track.name.empty())
            out << "thread " << tid;
        else
            appendJsonEscaped(out, track.name);
        out << "\"}}";

        // Oldest-first: the ring's logical start is `next` when
        // full, else index 0.
        const std::size_t size = track.used;
        const std::size_t begin =
            size == track.ring.size() ? track.next : 0;
        for (std::size_t i = 0; i < size; ++i) {
            const TraceEvent &event =
                track.ring[(begin + i) % track.ring.size()];
            out << ",\n"
                << R"({"ph": "X", "pid": 1, "tid": )" << tid
                << R"(, "ts": )" << event.start_us << R"(, "dur": )"
                << event.dur_us << R"(, "name": ")";
            appendJsonEscaped(out, event.name ? event.name : "span");
            out << "\"";
            if (!event.label.empty()) {
                out << R"(, "args": {"label": ")";
                appendJsonEscaped(out, event.label);
                out << "\"}";
            }
            out << "}";
        }
    }
    out << "\n]}\n";
}

bool
writeTraceJson(const std::string &path)
{
    std::ofstream out(path);
    if (!out) {
        std::fprintf(stderr, "gaia: cannot open trace sink %s\n",
                     path.c_str());
        return false;
    }
    writeTraceJson(out);
    out.flush();
    if (!out) {
        std::fprintf(stderr, "gaia: failed writing trace to %s\n",
                     path.c_str());
        return false;
    }
    return true;
}

void
clearTrace()
{
    std::vector<std::shared_ptr<ThreadTrack>> tracks;
    {
        TrackRegistry &registry = trackRegistry();
        std::lock_guard<std::mutex> lock(registry.mutex);
        tracks = registry.tracks;
    }
    for (const auto &track_ptr : tracks) {
        ThreadTrack &track = *track_ptr;
        std::lock_guard<std::mutex> lock(track.mutex);
        track.next = 0;
        track.used = 0;
        track.dropped = 0;
    }
}

std::uint64_t
traceDroppedSpans()
{
    std::vector<std::shared_ptr<ThreadTrack>> tracks;
    {
        TrackRegistry &registry = trackRegistry();
        std::lock_guard<std::mutex> lock(registry.mutex);
        tracks = registry.tracks;
    }
    std::uint64_t total = 0;
    for (const auto &track_ptr : tracks) {
        ThreadTrack &track = *track_ptr;
        std::lock_guard<std::mutex> lock(track.mutex);
        total += track.dropped;
    }
    return total;
}

} // namespace gaia::obs
