/**
 * @file
 * Small string utilities shared by the CSV layer and the reporting
 * code: splitting, trimming, numeric parsing with error reporting,
 * and fixed-precision formatting.
 */

#ifndef GAIA_COMMON_STRINGS_H
#define GAIA_COMMON_STRINGS_H

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace gaia {

/** Split on a delimiter; keeps empty fields. */
std::vector<std::string> split(std::string_view text, char delim);

/** Strip ASCII whitespace from both ends. */
std::string_view trim(std::string_view text);

/** Parse a double; ParseError (with `context`) on failure. */
Result<double> tryParseDouble(std::string_view text,
                              std::string_view context);

/** Parse an int64; ParseError (with `context`) on failure. */
Result<std::int64_t> tryParseInt(std::string_view text,
                                 std::string_view context);

/** Parse a double; calls fatal() with `context` on failure. */
double parseDouble(std::string_view text, std::string_view context);

/** Parse an int64; calls fatal() with `context` on failure. */
std::int64_t parseInt(std::string_view text, std::string_view context);

/** Format with fixed decimal places, e.g. fmt(3.14159, 2) == "3.14". */
std::string fmt(double value, int places = 2);

/** Format as a percentage with sign, e.g. "+12.3%" / "-4.0%". */
std::string fmtPercent(double fraction, int places = 1);

/** True if `text` starts with `prefix`. */
bool startsWith(std::string_view text, std::string_view prefix);

/** Lower-case an ASCII string. */
std::string toLower(std::string_view text);

/**
 * Expand "--flag=value" arguments into the separate "--flag",
 * "value" form the CLI/bench parsers consume. Only arguments that
 * start with "--" and contain '=' are split (at the first '=');
 * everything else passes through untouched.
 */
std::vector<std::string>
expandEqualsArgs(const std::vector<std::string> &args);

} // namespace gaia

#endif // GAIA_COMMON_STRINGS_H
