#include "common/time.h"

#include <array>
#include <sstream>

#include "common/logging.h"

namespace gaia {

namespace {

constexpr std::array<int, 12> kMonthDays = {
    31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31};

constexpr std::array<const char *, 12> kMonthNames = {
    "Jan", "Feb", "Mar", "Apr", "May", "Jun",
    "Jul", "Aug", "Sep", "Oct", "Nov", "Dec"};

} // namespace

SlotIndex
slotOf(Seconds t)
{
    GAIA_ASSERT(t >= 0, "negative simulation time ", t);
    return t / kSecondsPerHour;
}

Seconds
slotStart(SlotIndex slot)
{
    return slot * kSecondsPerHour;
}

Seconds
nextSlotBoundary(Seconds t)
{
    GAIA_ASSERT(t >= 0, "negative simulation time ", t);
    return ((t + kSecondsPerHour - 1) / kSecondsPerHour) *
           kSecondsPerHour;
}

int
hourOfDay(Seconds t)
{
    return static_cast<int>((t / kSecondsPerHour) % 24);
}

std::int64_t
dayOf(Seconds t)
{
    GAIA_ASSERT(t >= 0, "negative simulation time ", t);
    return t / kSecondsPerDay;
}

int
monthOf(Seconds t)
{
    std::int64_t day = dayOf(t) % kDaysPerYear;
    for (int m = 0; m < 12; ++m) {
        if (day < kMonthDays[m])
            return m;
        day -= kMonthDays[m];
    }
    panic("day-of-year arithmetic overflow for t=", t);
}

std::string
monthName(int month)
{
    GAIA_ASSERT(month >= 0 && month < 12, "bad month index ", month);
    return kMonthNames[static_cast<std::size_t>(month)];
}

std::string
formatDuration(Seconds s)
{
    const bool negative = s < 0;
    if (negative)
        s = -s;

    const Seconds d = s / kSecondsPerDay;
    const Seconds h = (s % kSecondsPerDay) / kSecondsPerHour;
    const Seconds m = (s % kSecondsPerHour) / kSecondsPerMinute;
    const Seconds sec = s % kSecondsPerMinute;

    std::ostringstream oss;
    if (negative)
        oss << "-";
    if (d > 0)
        oss << d << "d ";
    char buf[16];
    std::snprintf(buf, sizeof(buf), "%02lldh %02lldm %02llds",
                  static_cast<long long>(h), static_cast<long long>(m),
                  static_cast<long long>(sec));
    oss << buf;
    return oss.str();
}

} // namespace gaia
