/**
 * @file
 * Recoverable error handling: gaia::Status and gaia::Result<T>.
 *
 * GAIA distinguishes three failure classes (see DESIGN.md, "Error
 * handling conventions"):
 *
 *   - GAIA_ASSERT / panic(): an internal invariant was violated —
 *     a GAIA bug; aborts.
 *   - Status / Result<T>: bad *input* (malformed CSV, out-of-range
 *     configuration, unknown name). Returned, never thrown, so a
 *     parameter sweep can report one bad cell and keep going.
 *   - fatal(): terminal user-facing exit for standalone tools that
 *     have nothing to recover to. Library code under trace/,
 *     workload/, cloud/, and cli/ must not call it on input errors.
 *
 * A Status is cheap to pass around: the OK state carries no
 * allocation at all. Result<T> is a value-or-Status sum type with
 * full move-only payload support (e.g. Result<PolicyPtr>).
 *
 * Propagation macros:
 *
 *     GAIA_TRY(statusExpr);              // return on error
 *     GAIA_TRY_ASSIGN(lhs, resultExpr);  // unwrap or return
 *     GAIA_REQUIRE(cond, "message ", x); // invalid-argument check
 *
 * Thread-safety and ownership: Status and Result<T> are plain value
 * types with no global state. Each instance owns its payload
 * (Result<T> owns the T it wraps; moving transfers it); the error
 * message, once constructed, is immutable. Distinct instances —
 * including copies of the same error — may be read, copied, and
 * destroyed concurrently from different threads without
 * synchronization; mutating one instance from two threads needs
 * external locking, like any value type.
 */

#ifndef GAIA_COMMON_STATUS_H
#define GAIA_COMMON_STATUS_H

#include <memory>
#include <optional>
#include <string>
#include <utility>

#include "common/logging.h"

namespace gaia {

/** Coarse classification of recoverable errors. */
enum class ErrorCode
{
    Ok = 0,
    /** A value or configuration field is out of its valid range. */
    InvalidArgument,
    /** A named entity (file, policy, region…) does not exist. */
    NotFound,
    /** Text input could not be parsed (CSV cells, option values). */
    ParseError,
    /** Inputs are individually valid but mutually inconsistent. */
    FailedPrecondition,
    /** A bounded resource (queue slot, admission budget) is spent;
     *  retry later. The serving layer's backpressure signal. */
    ResourceExhausted,
};

/** Short label for an error code, e.g. "invalid-argument". */
std::string_view errorCodeName(ErrorCode code);

/**
 * Success or a (code, message) error. Copyable and cheap: OK holds
 * no allocation; errors share their payload across copies.
 */
class Status
{
  public:
    /** OK status. */
    Status() = default;

    static Status ok() { return Status(); }

    /** Error status with a concatenated message. */
    template <typename... Args>
    static Status
    error(ErrorCode code, Args &&...args)
    {
        GAIA_ASSERT(code != ErrorCode::Ok,
                    "error status needs a non-OK code");
        return Status(code,
                      detail::concat(std::forward<Args>(args)...));
    }

    template <typename... Args>
    static Status
    invalidArgument(Args &&...args)
    {
        return error(ErrorCode::InvalidArgument,
                     std::forward<Args>(args)...);
    }

    template <typename... Args>
    static Status
    notFound(Args &&...args)
    {
        return error(ErrorCode::NotFound,
                     std::forward<Args>(args)...);
    }

    template <typename... Args>
    static Status
    parseError(Args &&...args)
    {
        return error(ErrorCode::ParseError,
                     std::forward<Args>(args)...);
    }

    template <typename... Args>
    static Status
    failedPrecondition(Args &&...args)
    {
        return error(ErrorCode::FailedPrecondition,
                     std::forward<Args>(args)...);
    }

    template <typename... Args>
    static Status
    resourceExhausted(Args &&...args)
    {
        return error(ErrorCode::ResourceExhausted,
                     std::forward<Args>(args)...);
    }

    bool isOk() const { return rep_ == nullptr; }

    ErrorCode
    code() const
    {
        return rep_ ? rep_->code : ErrorCode::Ok;
    }

    /** Error message; empty for OK. */
    const std::string &message() const;

    /** "OK" or "<code>: <message>" for reporting. */
    std::string toString() const;

  private:
    struct Rep
    {
        ErrorCode code;
        std::string message;
    };

    Status(ErrorCode code, std::string message)
        : rep_(std::make_shared<const Rep>(
              Rep{code, std::move(message)}))
    {
    }

    std::shared_ptr<const Rep> rep_;
};

/**
 * A T or the Status explaining why there is none. Supports
 * move-only T; copyable whenever T is copyable.
 */
template <typename T>
class Result
{
  public:
    /** Implicit from a value (success). */
    Result(T value) : value_(std::move(value)) {}

    /** Implicit from an error status. */
    Result(Status status) : status_(std::move(status))
    {
        GAIA_ASSERT(!status_.isOk(),
                    "Result constructed from an OK status");
    }

    bool isOk() const { return value_.has_value(); }

    /** OK when holding a value, the error otherwise. */
    const Status &status() const { return status_; }

    /** Access the value; panics (GAIA bug) when holding an error. */
    const T &
    value() const &
    {
        GAIA_ASSERT(isOk(), "value() on error Result: ",
                    status_.toString());
        return *value_;
    }

    T &
    value() &
    {
        GAIA_ASSERT(isOk(), "value() on error Result: ",
                    status_.toString());
        return *value_;
    }

    T &&
    value() &&
    {
        GAIA_ASSERT(isOk(), "value() on error Result: ",
                    status_.toString());
        return *std::move(value_);
    }

    /** The value, or `fallback` when holding an error. */
    T
    valueOr(T fallback) const &
    {
        return isOk() ? *value_ : std::move(fallback);
    }

    const T &operator*() const & { return value(); }
    T &operator*() & { return value(); }
    T &&operator*() && { return std::move(*this).value(); }
    const T *operator->() const { return &value(); }
    T *operator->() { return &value(); }

  private:
    std::optional<T> value_;
    Status status_;
};

namespace detail {

/** Extract the error from a Status or a Result<T> uniformly. */
inline Status
toStatus(const Status &status)
{
    return status;
}

template <typename T>
Status
toStatus(const Result<T> &result)
{
    return result.status();
}

} // namespace detail

#define GAIA_STATUS_CONCAT_INNER(a, b) a##b
#define GAIA_STATUS_CONCAT(a, b) GAIA_STATUS_CONCAT_INNER(a, b)

/** Evaluate a Status expression; return it on error. */
#define GAIA_TRY(expr)                                                  \
    do {                                                                \
        ::gaia::Status gaia_try_status =                                \
            ::gaia::detail::toStatus((expr));                           \
        if (!gaia_try_status.isOk())                                    \
            return gaia_try_status;                                     \
    } while (0)

/**
 * Evaluate a Result expression; move its value into `lhs` on
 * success, return its Status on error. `lhs` may declare a new
 * variable: GAIA_TRY_ASSIGN(const auto trace, loadTrace(path));
 */
#define GAIA_TRY_ASSIGN(lhs, expr)                                      \
    GAIA_TRY_ASSIGN_IMPL(                                               \
        GAIA_STATUS_CONCAT(gaia_try_result_, __LINE__), lhs, expr)

#define GAIA_TRY_ASSIGN_IMPL(tmp, lhs, expr)                            \
    auto tmp = (expr);                                                  \
    if (!tmp.isOk())                                                    \
        return tmp.status();                                            \
    lhs = std::move(tmp).value()

/** Input check: return an InvalidArgument status when false. */
#define GAIA_REQUIRE(cond, ...)                                         \
    do {                                                                \
        if (!(cond))                                                    \
            return ::gaia::Status::invalidArgument(__VA_ARGS__);        \
    } while (0)

} // namespace gaia

#endif // GAIA_COMMON_STATUS_H
