/**
 * @file
 * Simulation time primitives.
 *
 * GAIA measures simulation time in integer seconds from the start of
 * the input traces (t = 0). Carbon-intensity traces are hourly, so
 * most scheduling math happens on hour slots; jobs, however, arrive
 * and run with second resolution.
 *
 * A simulated year is modelled as 365 days. Calendar helpers
 * (month-of-year, hour-of-day) are derived from that convention and
 * exist for reporting (e.g., monthly mean carbon intensity) rather
 * than for any wall-clock correspondence.
 */

#ifndef GAIA_COMMON_TIME_H
#define GAIA_COMMON_TIME_H

#include <cstdint>
#include <string>

namespace gaia {

/** Simulation time / durations, in seconds. */
using Seconds = std::int64_t;

/** Index of an hourly slot in a carbon-intensity trace. */
using SlotIndex = std::int64_t;

constexpr Seconds kSecondsPerMinute = 60;
constexpr Seconds kSecondsPerHour = 3600;
constexpr Seconds kSecondsPerDay = 24 * kSecondsPerHour;
constexpr Seconds kSecondsPerWeek = 7 * kSecondsPerDay;
constexpr Seconds kDaysPerYear = 365;
constexpr Seconds kSecondsPerYear = kDaysPerYear * kSecondsPerDay;
constexpr Seconds kHoursPerYear = kDaysPerYear * 24;

/** Convenience literal-style constructors. */
constexpr Seconds
minutes(double m)
{
    return static_cast<Seconds>(m * kSecondsPerMinute);
}

constexpr Seconds
hours(double h)
{
    return static_cast<Seconds>(h * kSecondsPerHour);
}

constexpr Seconds
days(double d)
{
    return static_cast<Seconds>(d * kSecondsPerDay);
}

/** Convert a duration in seconds to fractional hours. */
constexpr double
toHours(Seconds s)
{
    return static_cast<double>(s) / kSecondsPerHour;
}

/** Hourly slot containing time `t` (floor; negative t unsupported). */
SlotIndex slotOf(Seconds t);

/** Start time of hourly slot `slot`. */
Seconds slotStart(SlotIndex slot);

/** First slot boundary at or after `t`. */
Seconds nextSlotBoundary(Seconds t);

/** Hour of day in [0, 24) for time `t`. */
int hourOfDay(Seconds t);

/** Day index since trace start for time `t`. */
std::int64_t dayOf(Seconds t);

/**
 * Month of year in [0, 12) for time `t`, under a 365-day year with
 * standard (non-leap) month lengths.
 */
int monthOf(Seconds t);

/** Three-letter month name for month index in [0, 12). */
std::string monthName(int month);

/** Human-readable rendering, e.g. "2d 03h 15m 00s". */
std::string formatDuration(Seconds s);

} // namespace gaia

#endif // GAIA_COMMON_TIME_H
