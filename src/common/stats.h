/**
 * @file
 * Descriptive statistics used throughout trace analysis and the
 * evaluation harness: running moments, percentiles, CDFs, Pearson
 * correlation, and coefficient of variation.
 */

#ifndef GAIA_COMMON_STATS_H
#define GAIA_COMMON_STATS_H

#include <cstddef>
#include <utility>
#include <vector>

namespace gaia {

/**
 * Single-pass accumulator for mean/variance/min/max (Welford's
 * algorithm, numerically stable).
 */
class RunningStats
{
  public:
    /** Fold one observation into the accumulator. */
    void add(double x);

    /** Merge another accumulator (parallel reduction). */
    void merge(const RunningStats &other);

    std::size_t count() const { return count_; }
    double mean() const;
    /** Population variance (division by n). */
    double variance() const;
    double stddev() const;
    /** Coefficient of variation: stddev / mean (0 when mean == 0). */
    double cov() const;
    double min() const;
    double max() const;
    double sum() const { return sum_; }

  private:
    std::size_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * Error-free transformation: s = fl(a + b) and the exact rounding
 * error e such that a + b == s + e (Knuth two-sum, no requirement
 * on |a| vs |b|).
 */
inline void
twoSum(double a, double b, double &s, double &e)
{
    s = a + b;
    const double bv = s - a;
    e = (a - (s - bv)) + (b - bv);
}

/**
 * Compensated (double-double) accumulator: the running sum is kept
 * as a non-overlapping hi + lo pair, so totals are exact to well
 * below one ulp regardless of term count or ordering. Used for the
 * carbon prefix-sum tables, where exact sums preserve policy
 * tie-breaks between equal-intensity windows.
 */
struct CompensatedSum
{
    double hi = 0.0;
    double lo = 0.0;

    void add(double term)
    {
        double s, e;
        twoSum(hi, term, s, e);
        e += lo;
        // Fast renormalization (|s| >= |e| here): keeps the pair
        // non-overlapping so later adds stay accurate.
        hi = s + e;
        lo = e - (hi - s);
    }

    /** Round the accumulated sum to the nearest double. */
    double round() const { return hi + lo; }
};

/**
 * Percentile of a sample using linear interpolation between closest
 * ranks. `p` in [0, 100]. The input is copied and sorted.
 */
double percentile(std::vector<double> values, double p);

/** Arithmetic mean; 0 for an empty sample. */
double mean(const std::vector<double> &values);

/** Pearson correlation coefficient; requires equal non-empty sizes. */
double pearson(const std::vector<double> &x,
               const std::vector<double> &y);

/**
 * Empirical CDF evaluated at `points`: one (x, P[X <= x]) pair per
 * requested point.
 */
std::vector<std::pair<double, double>>
empiricalCdf(std::vector<double> sample,
             const std::vector<double> &points);

/**
 * Equi-depth CDF of a sample: `resolution` evenly spaced probability
 * levels with the corresponding sample quantiles. Useful for plotting
 * a whole distribution compactly.
 */
std::vector<std::pair<double, double>>
cdfCurve(std::vector<double> sample, std::size_t resolution = 100);

/**
 * Weighted histogram share: fraction of `weights` mass whose paired
 * `keys` value falls into [lo, hi). Sizes must match.
 */
double weightedShare(const std::vector<double> &keys,
                     const std::vector<double> &weights, double lo,
                     double hi);

} // namespace gaia

#endif // GAIA_COMMON_STATS_H
