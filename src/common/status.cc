#include "common/status.h"

namespace gaia {

std::string_view
errorCodeName(ErrorCode code)
{
    switch (code) {
      case ErrorCode::Ok:
        return "ok";
      case ErrorCode::InvalidArgument:
        return "invalid-argument";
      case ErrorCode::NotFound:
        return "not-found";
      case ErrorCode::ParseError:
        return "parse-error";
      case ErrorCode::FailedPrecondition:
        return "failed-precondition";
      case ErrorCode::ResourceExhausted:
        return "resource-exhausted";
    }
    panic("unknown error code");
}

const std::string &
Status::message() const
{
    static const std::string kEmpty;
    return rep_ ? rep_->message : kEmpty;
}

std::string
Status::toString() const
{
    if (isOk())
        return "OK";
    return detail::concat(errorCodeName(code()), ": ", message());
}

} // namespace gaia
