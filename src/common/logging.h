/**
 * @file
 * Status and error reporting helpers for the GAIA libraries.
 *
 * Mirrors the classic simulator convention:
 *   - panic():  an internal invariant was violated (a GAIA bug);
 *               aborts so that a debugger or core dump can be used.
 *   - fatal():  the program cannot continue because of a user error
 *               (bad configuration, malformed input); exits cleanly
 *               with a non-zero status.
 *   - warn():   something is suspicious but execution continues.
 *   - inform(): plain status output for the user.
 *
 * All helpers accept printf-free, iostream-free variadic arguments
 * that are stitched together with operator<< semantics, e.g.
 *
 *     gaia::fatal("trace file ", path, " has ", n, " columns");
 */

#ifndef GAIA_COMMON_LOGGING_H
#define GAIA_COMMON_LOGGING_H

#include <sstream>
#include <string>
#include <string_view>

namespace gaia {

namespace detail {

/** Concatenate a pack of streamable values into one string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    if constexpr (sizeof...(args) == 0) {
        return std::string();
    } else {
        std::ostringstream oss;
        (oss << ... << std::forward<Args>(args));
        return oss.str();
    }
}

/** Emit a tagged message to stderr; aborts when `is_panic`. */
[[noreturn]] void panicImpl(const std::string &msg);
[[noreturn]] void fatalImpl(const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

} // namespace detail

/**
 * Report an internal invariant violation and abort. Use only for
 * conditions that indicate a bug in GAIA itself.
 */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    detail::panicImpl(detail::concat(std::forward<Args>(args)...));
}

/**
 * Report an unrecoverable user-level error (bad input, bad config)
 * and exit with status 1.
 */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    detail::fatalImpl(detail::concat(std::forward<Args>(args)...));
}

/** Report a suspicious-but-survivable condition. */
template <typename... Args>
void
warn(Args &&...args)
{
    detail::warnImpl(detail::concat(std::forward<Args>(args)...));
}

/** Report ordinary status to the user. */
template <typename... Args>
void
inform(Args &&...args)
{
    detail::informImpl(detail::concat(std::forward<Args>(args)...));
}

/**
 * Assert an invariant with a formatted message. Unlike <cassert>,
 * stays active in release builds; GAIA's correctness checks are cheap
 * relative to simulation work.
 */
#define GAIA_ASSERT(cond, ...)                                          \
    do {                                                                \
        if (!(cond)) {                                                  \
            ::gaia::panic("assertion failed: ", #cond, " — ",           \
                          ::gaia::detail::concat(__VA_ARGS__), " (",    \
                          __FILE__, ":", __LINE__, ")");                \
        }                                                               \
    } while (0)

/** Count of warnings emitted so far (used by tests). */
std::size_t warningCount();

/** Suppress or re-enable warn()/inform() output (used by tests). */
void setQuiet(bool quiet);

} // namespace gaia

#endif // GAIA_COMMON_LOGGING_H
