#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <iostream>

namespace gaia {

namespace {

std::atomic<std::size_t> warning_counter{0};
std::atomic<bool> quiet_mode{false};

} // namespace

namespace detail {

void
panicImpl(const std::string &msg)
{
    std::cerr << "panic: " << msg << std::endl;
    std::abort();
}

void
fatalImpl(const std::string &msg)
{
    std::cerr << "fatal: " << msg << std::endl;
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    warning_counter.fetch_add(1, std::memory_order_relaxed);
    if (!quiet_mode.load(std::memory_order_relaxed))
        std::cerr << "warn: " << msg << std::endl;
}

void
informImpl(const std::string &msg)
{
    if (!quiet_mode.load(std::memory_order_relaxed))
        std::cout << "info: " << msg << std::endl;
}

} // namespace detail

std::size_t
warningCount()
{
    return warning_counter.load(std::memory_order_relaxed);
}

void
setQuiet(bool quiet)
{
    quiet_mode.store(quiet, std::memory_order_relaxed);
}

} // namespace gaia
