/**
 * @file
 * Process-wide, persistent work-stealing executor.
 *
 * The figure harnesses used to fork and join a fresh thread team on
 * every parallelFor call; sweeps with fewer cells than cores also
 * stranded most of the machine. Executor fixes both: a lazily
 * started singleton pool whose workers live for the process, each
 * owning a deque of tasks — owners push and pop at the back (LIFO,
 * cache-warm), thieves steal from the front (FIFO, oldest first).
 *
 * Work is submitted through a TaskGroup, which supports nested
 * submission: a task running on a worker may open its own TaskGroup
 * and submit subtasks (SweepEngine uses this for cells × per-cell
 * replicas). TaskGroup::wait() *helps* — it executes queued tasks
 * instead of blocking — so nested waits can never deadlock the
 * pool, even when every worker is waiting on an inner group.
 *
 * Shutdown order: the destructor raises the stop flag, wakes every
 * worker, and joins them; workers exit only once their deques are
 * empty, so no accepted task is dropped. The singleton is a
 * function-local static, destroyed after main() returns — by then
 * every TaskGroup (all stack-scoped) has completed.
 *
 * The worker-count resolution (setParallelThreads / GAIA_THREADS /
 * hardware concurrency) lives here too, shared by parallelFor and
 * the pool sizing.
 *
 * Thread-safety and ownership contracts:
 *  - Executor::instance() is safe to call from any thread; the pool
 *    owns its workers and outlives every stack-scoped TaskGroup.
 *  - TaskGroup::run() may be called from any thread, including from
 *    inside a task; a single TaskGroup's run()/wait() calls must
 *    come from one owning thread at a time (the group is a
 *    single-owner handle, not a shared queue).
 *  - Submitted callables are owned by the pool until they finish;
 *    they may capture the owner's stack by reference because wait()
 *    — and the draining destructor — do not return before every
 *    task of the group has run. The first exception a group's task
 *    throws is rethrown from wait(); the destructor drains without
 *    rethrowing.
 *  - setParallelThreads / setExecutorPoolEnabled mutate process
 *    globals and belong in main() before parallel work starts, not
 *    in concurrent code.
 */

#ifndef GAIA_COMMON_EXECUTOR_H
#define GAIA_COMMON_EXECUTOR_H

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace gaia {

class TaskGroup;

/**
 * Override the default worker count for the process (0 restores
 * automatic selection). Takes precedence over GAIA_THREADS. Affects
 * parallelFor's default fan-out immediately; the singleton pool's
 * size is fixed at first use.
 */
void setParallelThreads(unsigned threads);

/**
 * Worker count used when none is passed explicitly:
 * setParallelThreads() override, then GAIA_THREADS, then hardware
 * concurrency (minimum 1). A non-numeric or non-positive
 * GAIA_THREADS value is ignored with a once-per-process warning.
 */
unsigned defaultParallelThreads();

/**
 * Enable/disable the persistent pool (default on). When off,
 * parallelFor falls back to fork-join thread teams — the --no-pool
 * bench ablation.
 */
void setExecutorPoolEnabled(bool enabled);
bool executorPoolEnabled();

/** Persistent work-stealing thread pool. */
class Executor
{
  public:
    /**
     * The process-wide pool, started on first use with
     * defaultParallelThreads() workers.
     */
    static Executor &instance();

    /** Dedicated pool with `workers` threads (tests). */
    explicit Executor(unsigned workers);
    ~Executor();

    Executor(const Executor &) = delete;
    Executor &operator=(const Executor &) = delete;

    unsigned workerCount() const
    {
        return static_cast<unsigned>(workers_.size());
    }

    /**
     * Pop-and-run one queued task if any is available (own deque
     * back first on a worker, then steal). Returns false when every
     * deque is empty. Used by TaskGroup::wait() to help instead of
     * blocking.
     */
    bool tryRunOneTask();

  private:
    friend class TaskGroup;

    struct Task
    {
        TaskGroup *group = nullptr;
        std::function<void()> fn;
    };

    /** One worker's deque; the mutex is per-worker, so owners and
     *  thieves contend only pairwise. */
    struct Worker
    {
        std::mutex mutex;
        std::deque<Task> tasks;
    };

    void submit(Task task);
    bool popTask(Task &out);
    void runTask(Task &task);
    void workerLoop(unsigned index);

    std::vector<std::unique_ptr<Worker>> workers_;
    std::vector<std::thread> threads_;
    /** Queued (not yet popped) tasks; parks idle workers. */
    std::atomic<std::size_t> queued_{0};
    std::atomic<bool> stop_{false};
    std::atomic<unsigned> next_queue_{0};
    std::mutex idle_mutex_;
    std::condition_variable idle_cv_;
};

/**
 * A batch of tasks whose completion is awaited together. Not
 * thread-safe for concurrent run() calls from different threads;
 * each group has one owner. Destruction waits for any unfinished
 * tasks (without rethrowing), so tasks may safely capture the
 * owner's stack by reference.
 */
class TaskGroup
{
  public:
    explicit TaskGroup(Executor &executor = Executor::instance())
        : executor_(executor)
    {
    }

    ~TaskGroup();

    TaskGroup(const TaskGroup &) = delete;
    TaskGroup &operator=(const TaskGroup &) = delete;

    /** Submit one task; may be called from inside another task. */
    void run(std::function<void()> fn);

    /**
     * Execute queued tasks until every task submitted to this group
     * has finished, then rethrow the first captured exception, if
     * any. Tasks of *other* groups may be executed while helping.
     */
    void wait();

  private:
    friend class Executor;

    void recordError(std::exception_ptr error);

    Executor &executor_;
    std::atomic<std::size_t> pending_{0};
    std::mutex error_mutex_;
    std::exception_ptr first_error_;
};

} // namespace gaia

#endif // GAIA_COMMON_EXECUTOR_H
