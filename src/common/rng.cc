#include "common/rng.h"

#include <cmath>

#include "common/logging.h"

namespace gaia {

namespace {

/** SplitMix64 step, used only for seeding the main generator. */
std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    // xoshiro256** must not be seeded with all zeros; SplitMix64
    // expansion guarantees a non-degenerate state for any seed.
    std::uint64_t s = seed;
    for (auto &word : state_)
        word = splitmix64(s);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;

    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);

    return result;
}

double
Rng::uniform()
{
    // 53 high bits -> double in [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    GAIA_ASSERT(lo <= hi, "bad uniform range [", lo, ", ", hi, ")");
    return lo + (hi - lo) * uniform();
}

std::int64_t
Rng::uniformInt(std::int64_t lo, std::int64_t hi)
{
    GAIA_ASSERT(lo <= hi, "bad uniformInt range [", lo, ", ", hi, "]");
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    if (span == 0)
        return static_cast<std::int64_t>(next()); // full 64-bit range
    // Rejection sampling removes modulo bias.
    const std::uint64_t limit = UINT64_MAX - UINT64_MAX % span;
    std::uint64_t r = next();
    while (r >= limit)
        r = next();
    return lo + static_cast<std::int64_t>(r % span);
}

double
Rng::exponential(double mean)
{
    GAIA_ASSERT(mean > 0.0, "exponential mean must be positive: ", mean);
    double u = uniform();
    while (u <= 0.0)
        u = uniform();
    return -mean * std::log(u);
}

double
Rng::normal()
{
    if (has_cached_normal_) {
        has_cached_normal_ = false;
        return cached_normal_;
    }
    double u1 = uniform();
    while (u1 <= 0.0)
        u1 = uniform();
    const double u2 = uniform();
    const double radius = std::sqrt(-2.0 * std::log(u1));
    const double angle = 2.0 * M_PI * u2;
    cached_normal_ = radius * std::sin(angle);
    has_cached_normal_ = true;
    return radius * std::cos(angle);
}

double
Rng::normal(double mean, double stddev)
{
    GAIA_ASSERT(stddev >= 0.0, "negative stddev ", stddev);
    return mean + stddev * normal();
}

double
Rng::lognormal(double mu, double sigma)
{
    return std::exp(normal(mu, sigma));
}

bool
Rng::bernoulli(double p)
{
    GAIA_ASSERT(p >= 0.0 && p <= 1.0, "bernoulli p out of range: ", p);
    return uniform() < p;
}

std::size_t
Rng::discrete(const std::vector<double> &weights)
{
    GAIA_ASSERT(!weights.empty(), "discrete() needs weights");
    double total = 0.0;
    for (double w : weights) {
        GAIA_ASSERT(w >= 0.0, "negative weight ", w);
        total += w;
    }
    GAIA_ASSERT(total > 0.0, "discrete() weights sum to zero");
    double x = uniform() * total;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        x -= weights[i];
        if (x < 0.0)
            return i;
    }
    return weights.size() - 1; // numerical edge: return last bucket
}

std::int64_t
Rng::geometric(double p)
{
    GAIA_ASSERT(p > 0.0 && p <= 1.0, "geometric p out of range: ", p);
    if (p >= 1.0)
        return 1;
    double u = uniform();
    while (u <= 0.0)
        u = uniform();
    // Inverse CDF of the {1, 2, ...} geometric distribution.
    return 1 +
           static_cast<std::int64_t>(std::log(u) / std::log1p(-p));
}

Rng
Rng::fork()
{
    return Rng(next());
}

} // namespace gaia
