/**
 * @file
 * Small-buffer vector for trivially copyable hot-path records.
 *
 * Simulation state keeps one tiny array per job (a plan's run
 * segments, an outcome's placed segments) that holds a single
 * element in the overwhelmingly common case — start-time policies
 * emit one segment, and an uninterrupted job executes in one piece.
 * std::vector pays a heap allocation for each, which was a
 * measurable share of the per-job floor in the sweep benches.
 * SmallVector stores up to N elements inline and only touches the
 * heap when a suspend-resume plan or an evicted job spills past
 * that.
 *
 * Restricted to trivially copyable element types so growth and
 * copies are memcpy and the move constructor can steal or copy
 * without per-element bookkeeping. Iterators are raw pointers;
 * the usual vector idioms (range-for, std::sort over begin()/end(),
 * operator[], front/back) work unchanged.
 *
 * Thread-safety and ownership: SmallVector owns its elements and
 * (when spilled) its heap block exclusively; there is no sharing
 * between instances — copies are deep. Like std::vector it is not
 * internally synchronized: concurrent const access is fine, any
 * mutation needs external locking, and growth invalidates
 * iterators and references (elements may move from the inline
 * buffer to the heap).
 */

#ifndef GAIA_COMMON_SMALL_VECTOR_H
#define GAIA_COMMON_SMALL_VECTOR_H

#include <cstddef>
#include <cstdlib>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace gaia {

template <typename T, std::size_t N>
class SmallVector
{
    static_assert(std::is_trivially_copyable_v<T>,
                  "SmallVector is restricted to trivially copyable "
                  "types (growth and copies are memcpy)");
    static_assert(N > 0, "inline capacity must be positive");

  public:
    using value_type = T;
    using iterator = T *;
    using const_iterator = const T *;

    // User-provided (not `= default`) so const-qualified
    // default-initialized instances are legal despite the
    // deliberately uninitialized inline buffer.
    SmallVector() {}

    SmallVector(const SmallVector &other) { assignFrom(other); }

    SmallVector(SmallVector &&other) noexcept { stealFrom(other); }

    SmallVector &operator=(const SmallVector &other)
    {
        if (this != &other) {
            releaseHeap();
            assignFrom(other);
        }
        return *this;
    }

    SmallVector &operator=(SmallVector &&other) noexcept
    {
        if (this != &other) {
            releaseHeap();
            stealFrom(other);
        }
        return *this;
    }

    ~SmallVector() { releaseHeap(); }

    bool empty() const { return size_ == 0; }
    std::size_t size() const { return size_; }
    std::size_t capacity() const { return capacity_; }

    T *data() { return data_; }
    const T *data() const { return data_; }
    iterator begin() { return data_; }
    iterator end() { return data_ + size_; }
    const_iterator begin() const { return data_; }
    const_iterator end() const { return data_ + size_; }

    T &operator[](std::size_t i) { return data_[i]; }
    const T &operator[](std::size_t i) const { return data_[i]; }
    T &front() { return data_[0]; }
    const T &front() const { return data_[0]; }
    T &back() { return data_[size_ - 1]; }
    const T &back() const { return data_[size_ - 1]; }

    void clear() { size_ = 0; }

    void reserve(std::size_t wanted)
    {
        if (wanted > capacity_)
            grow(wanted);
    }

    void push_back(const T &value)
    {
        if (size_ == capacity_)
            grow(capacity_ * 2);
        data_[size_++] = value;
    }

    template <typename... Args>
    T &emplace_back(Args &&...args)
    {
        if (size_ == capacity_)
            grow(capacity_ * 2);
        data_[size_] = T{std::forward<Args>(args)...};
        return data_[size_++];
    }

    friend bool operator==(const SmallVector &a, const SmallVector &b)
    {
        if (a.size_ != b.size_)
            return false;
        for (std::size_t i = 0; i < a.size_; ++i) {
            if (!(a.data_[i] == b.data_[i]))
                return false;
        }
        return true;
    }

  private:
    bool onHeap() const { return data_ != inlineData(); }

    T *inlineData()
    {
        return std::launder(reinterpret_cast<T *>(inline_));
    }
    const T *inlineData() const
    {
        return std::launder(reinterpret_cast<const T *>(inline_));
    }

    void releaseHeap()
    {
        if (onHeap())
            std::free(data_);
    }

    void resetToInline()
    {
        data_ = inlineData();
        size_ = 0;
        capacity_ = N;
    }

    void assignFrom(const SmallVector &other)
    {
        resetToInline();
        reserve(other.size_);
        std::memcpy(static_cast<void *>(data_), other.data_,
                    other.size_ * sizeof(T));
        size_ = other.size_;
    }

    void stealFrom(SmallVector &other) noexcept
    {
        if (other.onHeap()) {
            data_ = other.data_;
            size_ = other.size_;
            capacity_ = other.capacity_;
            other.resetToInline();
        } else {
            resetToInline();
            std::memcpy(static_cast<void *>(data_), other.data_,
                        other.size_ * sizeof(T));
            size_ = other.size_;
            other.size_ = 0;
        }
    }

    void grow(std::size_t wanted)
    {
        const std::size_t grown = wanted > 2 * N ? wanted : 2 * N;
        T *fresh =
            static_cast<T *>(std::malloc(grown * sizeof(T)));
        if (fresh == nullptr)
            throw std::bad_alloc();
        std::memcpy(static_cast<void *>(fresh), data_,
                    size_ * sizeof(T));
        releaseHeap();
        data_ = fresh;
        capacity_ = grown;
    }

    alignas(T) unsigned char inline_[N * sizeof(T)];
    T *data_ = inlineData();
    std::size_t size_ = 0;
    std::size_t capacity_ = N;
};

} // namespace gaia

#endif // GAIA_COMMON_SMALL_VECTOR_H
