#include "common/executor.h"

#include <cstdlib>
#include <string>

#include "common/logging.h"
#include "common/obs.h"

namespace gaia {

namespace {

// Registered once at load so the executor section always appears in
// metrics output; updates are lock-free stripe increments.
obs::Counter &c_tasks_run = obs::counter("executor.tasks_run");
obs::Counter &c_tasks_stolen = obs::counter("executor.tasks_stolen");
obs::Gauge &g_queue_depth = obs::gauge("executor.queue_depth");

/** Process-wide worker-count override; 0 means "not set". */
std::atomic<unsigned> thread_override{0};

/** Pool toggle for the --no-pool ablation. */
std::atomic<bool> pool_enabled{true};

/** Worker-local identity for LIFO submission and stealing order. */
thread_local Executor *tl_executor = nullptr;
thread_local unsigned tl_worker_index = 0;

} // namespace

void
setParallelThreads(unsigned threads)
{
    thread_override.store(threads, std::memory_order_relaxed);
}

unsigned
defaultParallelThreads()
{
    const unsigned override_count =
        thread_override.load(std::memory_order_relaxed);
    if (override_count > 0)
        return override_count;
    if (const char *env = std::getenv("GAIA_THREADS")) {
        char *end = nullptr;
        const long parsed = std::strtol(env, &end, 10);
        const bool numeric =
            end != env && end != nullptr && *end == '\0';
        if (numeric && parsed > 0)
            return static_cast<unsigned>(parsed);
        static std::once_flag warned;
        std::call_once(warned, [env] {
            warn("ignoring invalid GAIA_THREADS value '", env,
                 "' (expected a positive integer)");
        });
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 2;
}

void
setExecutorPoolEnabled(bool enabled)
{
    pool_enabled.store(enabled, std::memory_order_relaxed);
}

bool
executorPoolEnabled()
{
    return pool_enabled.load(std::memory_order_relaxed);
}

Executor &
Executor::instance()
{
    static Executor pool(defaultParallelThreads());
    return pool;
}

Executor::Executor(unsigned workers)
{
    if (workers == 0)
        workers = 1;
    workers_.reserve(workers);
    for (unsigned w = 0; w < workers; ++w)
        workers_.push_back(std::make_unique<Worker>());
    threads_.reserve(workers);
    try {
        for (unsigned w = 0; w < workers; ++w)
            threads_.emplace_back([this, w] { workerLoop(w); });
    } catch (...) {
        // Join the part of the team that did start before
        // propagating, mirroring parallelFor's unwind path.
        stop_.store(true, std::memory_order_relaxed);
        idle_cv_.notify_all();
        for (std::thread &t : threads_)
            t.join();
        throw;
    }
}

Executor::~Executor()
{
    stop_.store(true, std::memory_order_relaxed);
    {
        // Empty critical section: a worker that checked the
        // predicate but has not yet blocked still sees the store.
        const std::lock_guard<std::mutex> lock(idle_mutex_);
    }
    idle_cv_.notify_all();
    for (std::thread &t : threads_)
        t.join();
}

void
Executor::submit(Task task)
{
    Worker *target = nullptr;
    if (tl_executor == this) {
        // Submission from a worker: push onto its own deque so the
        // owner pops it back LIFO while idle peers steal the front.
        target = workers_[tl_worker_index].get();
    } else {
        const unsigned i = next_queue_.fetch_add(
            1, std::memory_order_relaxed);
        target = workers_[i % workers_.size()].get();
    }
    {
        const std::lock_guard<std::mutex> lock(target->mutex);
        target->tasks.push_back(std::move(task));
    }
    g_queue_depth.set(static_cast<std::int64_t>(
        queued_.fetch_add(1, std::memory_order_release) + 1));
    {
        const std::lock_guard<std::mutex> lock(idle_mutex_);
    }
    idle_cv_.notify_one();
}

bool
Executor::popTask(Task &out)
{
    const std::size_t count = workers_.size();
    // Own deque back first (LIFO); then sweep the others front-first
    // (FIFO), starting after our own slot so thieves spread out.
    const unsigned home =
        tl_executor == this ? tl_worker_index : 0;
    {
        Worker &own = *workers_[home];
        const std::lock_guard<std::mutex> lock(own.mutex);
        if (!own.tasks.empty()) {
            out = std::move(own.tasks.back());
            own.tasks.pop_back();
            queued_.fetch_sub(1, std::memory_order_relaxed);
            return true;
        }
    }
    for (std::size_t step = 1; step < count; ++step) {
        Worker &victim = *workers_[(home + step) % count];
        const std::lock_guard<std::mutex> lock(victim.mutex);
        if (!victim.tasks.empty()) {
            out = std::move(victim.tasks.front());
            victim.tasks.pop_front();
            queued_.fetch_sub(1, std::memory_order_relaxed);
            c_tasks_stolen.add();
            return true;
        }
    }
    return false;
}

void
Executor::runTask(Task &task)
{
    TaskGroup *group = task.group;
    c_tasks_run.add();
    try {
        const obs::Span span("executor.task");
        task.fn();
    } catch (...) {
        group->recordError(std::current_exception());
    }
    // Release the closure before signalling completion: the waiter
    // may unwind the stack the closure captures by reference.
    task.fn = nullptr;
    group->pending_.fetch_sub(1, std::memory_order_acq_rel);
}

bool
Executor::tryRunOneTask()
{
    Task task;
    if (!popTask(task))
        return false;
    runTask(task);
    return true;
}

void
Executor::workerLoop(unsigned index)
{
    tl_executor = this;
    tl_worker_index = index;
    obs::setThreadTrackName("worker " + std::to_string(index));
    for (;;) {
        Task task;
        if (popTask(task)) {
            runTask(task);
            continue;
        }
        std::unique_lock<std::mutex> lock(idle_mutex_);
        idle_cv_.wait(lock, [this] {
            return stop_.load(std::memory_order_relaxed) ||
                   queued_.load(std::memory_order_acquire) > 0;
        });
        if (stop_.load(std::memory_order_relaxed) &&
            queued_.load(std::memory_order_acquire) == 0)
            return;
    }
}

TaskGroup::~TaskGroup()
{
    // Drain without rethrowing: wait() already surfaced the first
    // error if the owner asked for it.
    while (pending_.load(std::memory_order_acquire) > 0) {
        if (!executor_.tryRunOneTask())
            std::this_thread::yield();
    }
}

void
TaskGroup::run(std::function<void()> fn)
{
    pending_.fetch_add(1, std::memory_order_relaxed);
    executor_.submit(Executor::Task{this, std::move(fn)});
}

void
TaskGroup::wait()
{
    while (pending_.load(std::memory_order_acquire) > 0) {
        // Help: run whatever is queued (possibly other groups'
        // tasks) instead of blocking a thread the pool could use.
        if (!executor_.tryRunOneTask())
            std::this_thread::yield();
    }
    std::exception_ptr error;
    {
        const std::lock_guard<std::mutex> lock(error_mutex_);
        error = first_error_;
        first_error_ = nullptr;
    }
    if (error)
        std::rethrow_exception(error);
}

void
TaskGroup::recordError(std::exception_ptr error)
{
    const std::lock_guard<std::mutex> lock(error_mutex_);
    if (!first_error_)
        first_error_ = error;
}

} // namespace gaia
