/**
 * @file
 * gaia::obs — low-overhead observability: a process-wide metrics
 * registry and a scoped-span tracer.
 *
 * The executor, plan cache, simulator, and sweep engine run the hot
 * path of every figure sweep, and after the PR 2–3 optimizations
 * none of that work is visible at runtime: there was no way to see
 * where a sweep's wall-clock goes, how the PlanCache hit rate
 * behaves across policies, or why one cell is slow. gaia::obs is
 * the telemetry layer those questions need, built so that having it
 * compiled in costs nothing measurable when no sink is requested:
 *
 *  - **Metrics** — named Counters, Gauges, and Histograms owned by
 *    a process-wide MetricsRegistry. Counters stripe their cells
 *    across cache lines (one relaxed fetch_add on a per-thread
 *    stripe per increment, no locks); a snapshot() aggregates the
 *    stripes. Instrumented subsystems hold references to their
 *    metrics at namespace scope, so the per-event cost is exactly
 *    the atomic op.
 *
 *  - **Tracing** — Span objects bracket a region of interest and
 *    append a Chrome/Perfetto `trace_event` record (`"ph":"X"`) to
 *    a per-thread ring buffer. Tracing is off by default: a
 *    disabled Span construct/destruct is one relaxed atomic load
 *    and a branch, no clock read, no allocation. Rings are bounded
 *    (oldest events overwritten; overwrites counted), so tracing a
 *    multi-million-job sweep cannot exhaust memory.
 *
 *  - **Detailed timing** — a few instrumentation points (PlanCache
 *    miss fill time) need clock reads that are individually cheap
 *    but sit on paths hot enough to matter in aggregate. They are
 *    gated on detailedTimingEnabled(), switched on only when a
 *    metrics or trace sink was requested (--metrics-out /
 *    --trace-out).
 *
 * Thread-safety: every entry point is safe from any thread.
 * Counter/Gauge/Histogram updates are lock-free; registry lookups
 * (obs::counter() etc.) take the registry mutex and should be
 * hoisted out of hot loops by keeping the returned reference.
 * Registered metrics live for the process — references never
 * dangle. writeTraceJson/metricsSnapshot may run concurrently with
 * updates; they see a consistent-enough view for reporting (each
 * cell is read atomically).
 *
 * Span names must be string literals (the pointer is stored, not
 * the characters); the optional label is copied.
 */

#ifndef GAIA_COMMON_OBS_H
#define GAIA_COMMON_OBS_H

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace gaia::obs {

namespace detail {

/** Tracer master switch; read per Span construction. */
extern std::atomic<bool> tracing_enabled;

/** Gate for clock-heavy instrumentation (see header comment). */
extern std::atomic<bool> detailed_timing;

/** This thread's counter stripe (assigned round-robin on first
 *  use). */
unsigned stripeSlot();

/** Microseconds since the process-wide trace epoch. */
std::uint64_t nowMicros();

/** Append one completed span to the calling thread's ring. */
void recordSpan(const char *name, std::string &&label,
                std::uint64_t start_us, std::uint64_t end_us);

} // namespace detail

/** Stripes per counter; more stripes, less contention, more RAM. */
inline constexpr unsigned kCounterStripes = 16;

/**
 * Monotonic event counter. add() is lock-free: one relaxed
 * fetch_add on the calling thread's stripe. value() sums the
 * stripes (racy-but-atomic reads; exact once writers quiesce).
 */
class Counter
{
  public:
    Counter() = default;
    Counter(const Counter &) = delete;
    Counter &operator=(const Counter &) = delete;

    void add(std::uint64_t n = 1)
    {
        cells_[detail::stripeSlot()].value.fetch_add(
            n, std::memory_order_relaxed);
    }

    std::uint64_t value() const
    {
        std::uint64_t total = 0;
        for (const Cell &cell : cells_)
            total += cell.value.load(std::memory_order_relaxed);
        return total;
    }

    void reset()
    {
        for (Cell &cell : cells_)
            cell.value.store(0, std::memory_order_relaxed);
    }

  private:
    /** Cache-line sized so stripes never false-share. */
    struct alignas(64) Cell
    {
        std::atomic<std::uint64_t> value{0};
    };

    std::array<Cell, kCounterStripes> cells_;
};

/** Last-writer-wins instantaneous value (e.g. queue depth). */
class Gauge
{
  public:
    Gauge() = default;
    Gauge(const Gauge &) = delete;
    Gauge &operator=(const Gauge &) = delete;

    void set(std::int64_t v)
    {
        value_.store(v, std::memory_order_relaxed);
    }

    void add(std::int64_t delta)
    {
        value_.fetch_add(delta, std::memory_order_relaxed);
    }

    std::int64_t value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

    void reset() { set(0); }

  private:
    std::atomic<std::int64_t> value_{0};
};

/**
 * Power-of-two-bucket histogram of non-negative samples (wall-time
 * seconds, sizes…). observe() is lock-free: an atomic count per
 * log2 bucket plus atomic sum/min/max. Quantiles reported from a
 * snapshot are bucket-resolution estimates (within a factor of 2),
 * clamped to the exact observed [min, max].
 */
class Histogram
{
  public:
    /** Bucket b spans [2^(b-kBucketBias-1), 2^(b-kBucketBias)). */
    static constexpr int kBuckets = 64;
    static constexpr int kBucketBias = 31;

    Histogram() = default;
    Histogram(const Histogram &) = delete;
    Histogram &operator=(const Histogram &) = delete;

    void observe(double value);

    std::uint64_t count() const
    {
        return count_.load(std::memory_order_relaxed);
    }

    double sum() const
    {
        return sum_.load(std::memory_order_relaxed);
    }

    double min() const;
    double max() const;

    /** Bucket-resolution quantile estimate, q in [0, 1]. */
    double quantile(double q) const;

    void reset();

  private:
    static int bucketFor(double value);

    std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
    std::atomic<std::uint64_t> count_{0};
    std::atomic<double> sum_{0.0};
    std::atomic<double> min_{0.0};
    std::atomic<double> max_{0.0};
    /** min_/max_ are meaningless until the first observe(). */
    std::atomic<bool> any_{false};
};

/** One counter's name and aggregated value. */
struct CounterSnapshot
{
    std::string name;
    std::uint64_t value = 0;
};

/** One gauge's name and last-written value. */
struct GaugeSnapshot
{
    std::string name;
    std::int64_t value = 0;
};

/** One histogram's aggregate statistics. */
struct HistogramSnapshot
{
    std::string name;
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
};

/** Point-in-time aggregation of every registered metric, sorted by
 *  name within each kind. */
struct MetricsSnapshot
{
    std::vector<CounterSnapshot> counters;
    std::vector<GaugeSnapshot> gauges;
    std::vector<HistogramSnapshot> histograms;

    /** The named counter's value, or 0 when absent. */
    std::uint64_t counterValue(std::string_view name) const;
};

/**
 * Process-wide, name-keyed home of every metric. Metrics are
 * created on first lookup and live for the process, so returned
 * references may be cached at namespace scope (the instrumented
 * subsystems do exactly that).
 */
class MetricsRegistry
{
  public:
    static MetricsRegistry &instance();

    MetricsRegistry(const MetricsRegistry &) = delete;
    MetricsRegistry &operator=(const MetricsRegistry &) = delete;

    Counter &counter(std::string_view name);
    Gauge &gauge(std::string_view name);
    Histogram &histogram(std::string_view name);

    MetricsSnapshot snapshot() const;

    /** Zero every registered metric (tests). Registrations — and
     *  cached references — survive. */
    void reset();

  private:
    MetricsRegistry() = default;
    ~MetricsRegistry() = default;

    struct Impl;
    Impl &impl() const;
};

/** Shorthands for MetricsRegistry::instance() lookups. */
Counter &counter(std::string_view name);
Gauge &gauge(std::string_view name);
Histogram &histogram(std::string_view name);

/** Snapshot of the process-wide registry. */
MetricsSnapshot metricsSnapshot();

/** Zero every metric in the process-wide registry (tests). */
void resetMetrics();

/** Serialize a snapshot as a stable, pretty-printed JSON object
 *  ({"counters": {...}, "gauges": {...}, "histograms": {...}}). */
void writeMetricsJson(std::ostream &out,
                      const MetricsSnapshot &snapshot);

/** Snapshot the registry and write it to `path`; false on I/O
 *  error (reported to stderr). */
bool writeMetricsJson(const std::string &path);

/** Human-readable aligned table of a snapshot (--verbose). */
void printMetricsSummary(std::ostream &out,
                         const MetricsSnapshot &snapshot);

/** Whether Spans currently record (default off). */
inline bool
tracingEnabled()
{
    return detail::tracing_enabled.load(std::memory_order_relaxed);
}

/** Turn span recording on or off at runtime. */
void setTracingEnabled(bool enabled);

/** Whether clock-heavy instrumentation points run (default off). */
inline bool
detailedTimingEnabled()
{
    return detail::detailed_timing.load(std::memory_order_relaxed);
}

/** Enabled alongside any requested sink (--metrics-out /
 *  --trace-out); may also be toggled directly. */
void setDetailedTiming(bool enabled);

/**
 * Name the calling thread's trace track ("main", "worker 3"…);
 * shown as the thread name in Perfetto. Also forces the track to
 * exist, so named threads appear in the JSON even when they
 * recorded no spans.
 */
void setThreadTrackName(std::string name);

/**
 * Ring capacity (events per thread track) applied to tracks
 * created afterwards; existing tracks keep their rings. Default
 * 32768.
 */
void setTraceRingCapacity(std::size_t capacity);

/**
 * Scoped trace span: records one complete event covering its
 * lifetime on the calling thread's track. When tracing is disabled
 * at construction the span is inert — one relaxed load, no clock
 * read. Construct and destroy on the same thread.
 */
class Span
{
  public:
    explicit Span(const char *name)
        : name_(name), active_(tracingEnabled())
    {
        if (active_)
            start_us_ = detail::nowMicros();
    }

    /** As above with a per-span label (copied only when active). */
    Span(const char *name, const std::string &label)
        : name_(name), active_(tracingEnabled())
    {
        if (active_) {
            label_ = label;
            start_us_ = detail::nowMicros();
        }
    }

    ~Span()
    {
        if (active_)
            detail::recordSpan(name_, std::move(label_), start_us_,
                               detail::nowMicros());
    }

    Span(const Span &) = delete;
    Span &operator=(const Span &) = delete;

  private:
    const char *name_;
    std::string label_;
    std::uint64_t start_us_ = 0;
    bool active_;
};

/**
 * Serialize every recorded span as Chrome trace_event JSON
 * ({"traceEvents": [...]}) loadable by Perfetto and
 * chrome://tracing: one metadata record naming each thread track,
 * then the spans as complete ("ph":"X") events. Concurrent span
 * recording is tolerated; spans still in flight are absent.
 */
void writeTraceJson(std::ostream &out);

/** As above to `path`; false on I/O error (reported to stderr). */
bool writeTraceJson(const std::string &path);

/** Drop every recorded span (tests); tracks and names survive. */
void clearTrace();

/** Spans overwritten by ring wrap-around since the last clear. */
std::uint64_t traceDroppedSpans();

} // namespace gaia::obs

#endif // GAIA_COMMON_OBS_H
