/**
 * @file
 * Bounded lock-free multi-producer queue for streaming submissions.
 *
 * The serving layer (src/serve) accepts job submissions from many
 * connection/producer threads and feeds them to one driver thread
 * that owns the scheduler. This queue is that hand-off: a bounded
 * ring of sequenced cells (Vyukov-style), where producers claim
 * slots with one CAS and the consumer pops in slot order. A full
 * ring rejects the push instead of blocking, which is exactly the
 * admission-control behaviour the daemon wants — backpressure is a
 * visible `false` (surfaced as a ResourceExhausted Status one layer
 * up), never an unbounded queue.
 *
 * Ordering guarantees:
 *  - Pops observe pushes in slot-claim order (global FIFO over the
 *    linearization of the claiming CASes).
 *  - Each producer's own pushes are popped in that producer's
 *    program order (its claims are sequential), which is what keeps
 *    a per-connection job stream sorted end to end.
 *
 * Thread-safety: tryPush() may be called from any number of
 * threads. tryPop() is written for one consumer at a time (the
 * cell protocol itself is MPMC-safe, but the serving layer never
 * needs concurrent consumers). sizeApprox() is racy by design —
 * monitoring only. T must be movable; cells are default-constructed
 * up front, so T needs a default constructor.
 */

#ifndef GAIA_COMMON_MPSC_QUEUE_H
#define GAIA_COMMON_MPSC_QUEUE_H

#include <atomic>
#include <cstddef>
#include <memory>
#include <utility>

#include "common/logging.h"

namespace gaia {

/** Bounded lock-free MPSC ring; see the file comment. */
template <typename T>
class MpscQueue
{
  public:
    /**
     * `capacity` is rounded up to the next power of two (minimum
     * 2) so the slot index is a mask, not a modulo.
     */
    explicit MpscQueue(std::size_t capacity)
    {
        std::size_t size = 2;
        while (size < capacity)
            size <<= 1;
        capacity_ = size;
        mask_ = size - 1;
        cells_ = std::make_unique<Cell[]>(size);
        for (std::size_t i = 0; i < size; ++i)
            cells_[i].seq.store(i, std::memory_order_relaxed);
    }

    MpscQueue(const MpscQueue &) = delete;
    MpscQueue &operator=(const MpscQueue &) = delete;

    /**
     * Enqueue `value`; false when the ring is full (the value is
     * left untouched so the caller can report or retry).
     */
    bool tryPush(T &value)
    {
        std::size_t pos = tail_.load(std::memory_order_relaxed);
        for (;;) {
            Cell &cell = cells_[pos & mask_];
            const std::size_t seq =
                cell.seq.load(std::memory_order_acquire);
            const auto dif = static_cast<std::ptrdiff_t>(seq) -
                             static_cast<std::ptrdiff_t>(pos);
            if (dif == 0) {
                // The slot is free; claim it. Failure means another
                // producer claimed `pos` — reload and retry.
                if (tail_.compare_exchange_weak(
                        pos, pos + 1, std::memory_order_relaxed))
                {
                    cell.value = std::move(value);
                    cell.seq.store(pos + 1,
                                   std::memory_order_release);
                    return true;
                }
            } else if (dif < 0) {
                // The slot still holds an unconsumed value from one
                // lap ago: the ring is full.
                return false;
            } else {
                pos = tail_.load(std::memory_order_relaxed);
            }
        }
    }

    /** rvalue convenience overload of tryPush(). */
    bool tryPush(T &&value) { return tryPush(value); }

    /** Dequeue into `out`; false when the ring is empty. */
    bool tryPop(T &out)
    {
        std::size_t pos = head_.load(std::memory_order_relaxed);
        for (;;) {
            Cell &cell = cells_[pos & mask_];
            const std::size_t seq =
                cell.seq.load(std::memory_order_acquire);
            const auto dif = static_cast<std::ptrdiff_t>(seq) -
                             static_cast<std::ptrdiff_t>(pos + 1);
            if (dif == 0) {
                if (head_.compare_exchange_weak(
                        pos, pos + 1, std::memory_order_relaxed))
                {
                    out = std::move(cell.value);
                    // Mark the slot free for the producers' next
                    // lap.
                    cell.seq.store(pos + capacity_,
                                   std::memory_order_release);
                    return true;
                }
            } else if (dif < 0) {
                return false; // empty
            } else {
                pos = head_.load(std::memory_order_relaxed);
            }
        }
    }

    /** Rounded-up slot count. */
    std::size_t capacity() const { return capacity_; }

    /** Racy occupancy estimate for monitoring. */
    std::size_t sizeApprox() const
    {
        const std::size_t tail =
            tail_.load(std::memory_order_relaxed);
        const std::size_t head =
            head_.load(std::memory_order_relaxed);
        return tail >= head ? tail - head : 0;
    }

  private:
    struct Cell
    {
        std::atomic<std::size_t> seq{0};
        T value{};
    };

    /** Producers' claim cursor and the consumer's cursor sit on
     *  their own cache lines so claims never false-share pops. */
    alignas(64) std::atomic<std::size_t> tail_{0};
    alignas(64) std::atomic<std::size_t> head_{0};
    std::unique_ptr<Cell[]> cells_;
    std::size_t capacity_ = 0;
    std::size_t mask_ = 0;
};

} // namespace gaia

#endif // GAIA_COMMON_MPSC_QUEUE_H
