/**
 * @file
 * Minimal CSV reader/writer used for trace I/O and experiment output.
 *
 * The format is deliberately simple (no quoting/escaping): GAIA's
 * traces are purely numeric plus identifier columns, matching the
 * original artifact's file layout. A header row is required on read
 * and emitted on write.
 */

#ifndef GAIA_COMMON_CSV_H
#define GAIA_COMMON_CSV_H

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "common/status.h"

namespace gaia {

/** In-memory CSV table: a header plus string-valued rows. */
class CsvTable
{
  public:
    CsvTable(std::vector<std::string> header,
             std::vector<std::vector<std::string>> rows);

    const std::vector<std::string> &header() const { return header_; }
    std::size_t rowCount() const { return rows_.size(); }
    std::size_t columnCount() const { return header_.size(); }

    /** Column index for `name`; NotFound if absent. */
    Result<std::size_t> tryColumnIndex(const std::string &name) const;

    /** Raw cell access. */
    const std::string &cell(std::size_t row, std::size_t col) const;

    /** Typed accessors; ParseError describes row and column. */
    Result<double> tryCellDouble(std::size_t row,
                                 std::size_t col) const;
    Result<std::int64_t> tryCellInt(std::size_t row,
                                    std::size_t col) const;

    /** Full column extraction as doubles; first parse error wins. */
    Result<std::vector<double>>
    tryColumnDoubles(const std::string &name) const;

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/** Parse a CSV file; error on missing file or ragged rows. */
Result<CsvTable> tryReadCsv(const std::string &path);

/** Parse CSV from a string; error on empty input or ragged rows. */
Result<CsvTable> tryReadCsvText(const std::string &text,
                                const std::string &context =
                                    "<string>");

/**
 * Streaming CSV writer. Rows must match the header width; the file
 * is flushed and closed on destruction.
 */
class CsvWriter
{
  public:
    CsvWriter(const std::string &path,
              std::vector<std::string> header);
    ~CsvWriter();

    CsvWriter(const CsvWriter &) = delete;
    CsvWriter &operator=(const CsvWriter &) = delete;

    void writeRow(const std::vector<std::string> &fields);

    const std::string &path() const { return path_; }

  private:
    std::string path_;
    std::size_t width_;
    std::ofstream out_;
};

} // namespace gaia

#endif // GAIA_COMMON_CSV_H
