#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace gaia {

void
RunningStats::add(double x)
{
    if (count_ == 0) {
        min_ = x;
        max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++count_;
    sum_ += x;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
}

void
RunningStats::merge(const RunningStats &other)
{
    if (other.count_ == 0)
        return;
    if (count_ == 0) {
        *this = other;
        return;
    }
    const double na = static_cast<double>(count_);
    const double nb = static_cast<double>(other.count_);
    const double delta = other.mean_ - mean_;
    const double n = na + nb;
    mean_ += delta * nb / n;
    m2_ += other.m2_ + delta * delta * na * nb / n;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
    count_ += other.count_;
}

double
RunningStats::mean() const
{
    return count_ == 0 ? 0.0 : mean_;
}

double
RunningStats::variance() const
{
    return count_ == 0 ? 0.0 : m2_ / static_cast<double>(count_);
}

double
RunningStats::stddev() const
{
    return std::sqrt(variance());
}

double
RunningStats::cov() const
{
    const double m = mean();
    return m == 0.0 ? 0.0 : stddev() / m;
}

double
RunningStats::min() const
{
    GAIA_ASSERT(count_ > 0, "min() of empty accumulator");
    return min_;
}

double
RunningStats::max() const
{
    GAIA_ASSERT(count_ > 0, "max() of empty accumulator");
    return max_;
}

double
percentile(std::vector<double> values, double p)
{
    GAIA_ASSERT(!values.empty(), "percentile of empty sample");
    GAIA_ASSERT(p >= 0.0 && p <= 100.0, "percentile out of range: ", p);
    std::sort(values.begin(), values.end());
    if (values.size() == 1)
        return values.front();
    const double rank =
        p / 100.0 * static_cast<double>(values.size() - 1);
    const auto lo = static_cast<std::size_t>(std::floor(rank));
    const auto hi = static_cast<std::size_t>(std::ceil(rank));
    const double frac = rank - std::floor(rank);
    return values[lo] + frac * (values[hi] - values[lo]);
}

double
mean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double total = 0.0;
    for (double v : values)
        total += v;
    return total / static_cast<double>(values.size());
}

double
pearson(const std::vector<double> &x, const std::vector<double> &y)
{
    GAIA_ASSERT(x.size() == y.size(), "pearson: size mismatch ",
                x.size(), " vs ", y.size());
    GAIA_ASSERT(x.size() >= 2, "pearson: need at least two points");
    const double mx = mean(x);
    const double my = mean(y);
    double sxy = 0.0, sxx = 0.0, syy = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
        const double dx = x[i] - mx;
        const double dy = y[i] - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if (sxx == 0.0 || syy == 0.0)
        return 0.0;
    return sxy / std::sqrt(sxx * syy);
}

std::vector<std::pair<double, double>>
empiricalCdf(std::vector<double> sample,
             const std::vector<double> &points)
{
    GAIA_ASSERT(!sample.empty(), "empiricalCdf of empty sample");
    std::sort(sample.begin(), sample.end());
    std::vector<std::pair<double, double>> out;
    out.reserve(points.size());
    for (double x : points) {
        const auto it =
            std::upper_bound(sample.begin(), sample.end(), x);
        const double frac =
            static_cast<double>(it - sample.begin()) /
            static_cast<double>(sample.size());
        out.emplace_back(x, frac);
    }
    return out;
}

std::vector<std::pair<double, double>>
cdfCurve(std::vector<double> sample, std::size_t resolution)
{
    GAIA_ASSERT(!sample.empty(), "cdfCurve of empty sample");
    GAIA_ASSERT(resolution >= 2, "cdfCurve resolution too small");
    std::sort(sample.begin(), sample.end());
    std::vector<std::pair<double, double>> out;
    out.reserve(resolution);
    for (std::size_t i = 0; i < resolution; ++i) {
        const double p =
            static_cast<double>(i) /
            static_cast<double>(resolution - 1);
        const double rank =
            p * static_cast<double>(sample.size() - 1);
        const auto lo = static_cast<std::size_t>(std::floor(rank));
        const auto hi = static_cast<std::size_t>(std::ceil(rank));
        const double frac = rank - std::floor(rank);
        const double q = sample[lo] + frac * (sample[hi] - sample[lo]);
        out.emplace_back(q, p);
    }
    return out;
}

double
weightedShare(const std::vector<double> &keys,
              const std::vector<double> &weights, double lo, double hi)
{
    GAIA_ASSERT(keys.size() == weights.size(),
                "weightedShare: size mismatch");
    double total = 0.0;
    double in_range = 0.0;
    for (std::size_t i = 0; i < keys.size(); ++i) {
        total += weights[i];
        if (keys[i] >= lo && keys[i] < hi)
            in_range += weights[i];
    }
    return total == 0.0 ? 0.0 : in_range / total;
}

} // namespace gaia
