#include "common/csv.h"

#include <sstream>

#include "common/logging.h"
#include "common/strings.h"

namespace gaia {

namespace {

Result<CsvTable>
parseStream(std::istream &in, const std::string &context)
{
    std::string line;
    if (!std::getline(in, line))
        return Status::parseError("empty CSV input: ", context);

    std::vector<std::string> header;
    for (const auto &field : split(line, ','))
        header.emplace_back(trim(field));
    if (header.empty()) {
        return Status::parseError("CSV header has no columns: ",
                                  context);
    }

    std::vector<std::vector<std::string>> rows;
    std::size_t line_no = 1;
    while (std::getline(in, line)) {
        ++line_no;
        if (trim(line).empty())
            continue;
        std::vector<std::string> row;
        for (const auto &field : split(line, ','))
            row.emplace_back(trim(field));
        if (row.size() != header.size()) {
            return Status::parseError(
                "CSV row ", line_no, " has ", row.size(),
                " fields, expected ", header.size(), ": ", context);
        }
        rows.push_back(std::move(row));
    }
    return CsvTable(std::move(header), std::move(rows));
}

} // namespace

CsvTable::CsvTable(std::vector<std::string> header,
                   std::vector<std::vector<std::string>> rows)
    : header_(std::move(header)), rows_(std::move(rows))
{
    for (const auto &row : rows_) {
        GAIA_ASSERT(row.size() == header_.size(),
                    "ragged CSV row of width ", row.size());
    }
}

Result<std::size_t>
CsvTable::tryColumnIndex(const std::string &name) const
{
    for (std::size_t i = 0; i < header_.size(); ++i) {
        if (header_[i] == name)
            return i;
    }
    return Status::notFound("CSV column '", name, "' not found");
}

const std::string &
CsvTable::cell(std::size_t row, std::size_t col) const
{
    GAIA_ASSERT(row < rows_.size(), "CSV row out of range: ", row);
    GAIA_ASSERT(col < header_.size(), "CSV column out of range: ", col);
    return rows_[row][col];
}

Result<double>
CsvTable::tryCellDouble(std::size_t row, std::size_t col) const
{
    std::ostringstream ctx;
    ctx << "row " << row << ", column '" << header_[col] << "'";
    return tryParseDouble(cell(row, col), ctx.str());
}

Result<std::int64_t>
CsvTable::tryCellInt(std::size_t row, std::size_t col) const
{
    std::ostringstream ctx;
    ctx << "row " << row << ", column '" << header_[col] << "'";
    return tryParseInt(cell(row, col), ctx.str());
}

Result<std::vector<double>>
CsvTable::tryColumnDoubles(const std::string &name) const
{
    GAIA_TRY_ASSIGN(const std::size_t col, tryColumnIndex(name));
    std::vector<double> out;
    out.reserve(rows_.size());
    for (std::size_t r = 0; r < rows_.size(); ++r) {
        GAIA_TRY_ASSIGN(const double value, tryCellDouble(r, col));
        out.push_back(value);
    }
    return out;
}

Result<CsvTable>
tryReadCsv(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        return Status::notFound("cannot open CSV file: ", path);
    return parseStream(in, path);
}

Result<CsvTable>
tryReadCsvText(const std::string &text, const std::string &context)
{
    std::istringstream in(text);
    return parseStream(in, context);
}

CsvWriter::CsvWriter(const std::string &path,
                     std::vector<std::string> header)
    : path_(path), width_(header.size()), out_(path)
{
    if (!out_)
        fatal("cannot open CSV file for writing: ", path);
    GAIA_ASSERT(width_ > 0, "CSV writer needs a non-empty header");
    for (std::size_t i = 0; i < header.size(); ++i) {
        if (i > 0)
            out_ << ',';
        out_ << header[i];
    }
    out_ << '\n';
}

CsvWriter::~CsvWriter() = default;

void
CsvWriter::writeRow(const std::vector<std::string> &fields)
{
    GAIA_ASSERT(fields.size() == width_, "CSV row width ",
                fields.size(), " != header width ", width_);
    for (std::size_t i = 0; i < fields.size(); ++i) {
        if (i > 0)
            out_ << ',';
        out_ << fields[i];
    }
    out_ << '\n';
}

} // namespace gaia
