#include "common/strings.h"

#include <cctype>
#include <charconv>
#include <cstdio>

#include "common/logging.h"

namespace gaia {

std::vector<std::string>
split(std::string_view text, char delim)
{
    std::vector<std::string> fields;
    std::size_t start = 0;
    while (true) {
        const std::size_t pos = text.find(delim, start);
        if (pos == std::string_view::npos) {
            fields.emplace_back(text.substr(start));
            break;
        }
        fields.emplace_back(text.substr(start, pos - start));
        start = pos + 1;
    }
    return fields;
}

std::string_view
trim(std::string_view text)
{
    while (!text.empty() &&
           std::isspace(static_cast<unsigned char>(text.front())))
        text.remove_prefix(1);
    while (!text.empty() &&
           std::isspace(static_cast<unsigned char>(text.back())))
        text.remove_suffix(1);
    return text;
}

Result<double>
tryParseDouble(std::string_view text, std::string_view context)
{
    text = trim(text);
    double value = 0.0;
    const auto [ptr, ec] =
        std::from_chars(text.data(), text.data() + text.size(), value);
    if (ec != std::errc() || ptr != text.data() + text.size()) {
        return Status::parseError("cannot parse '", text,
                                  "' as a number (", context, ")");
    }
    return value;
}

Result<std::int64_t>
tryParseInt(std::string_view text, std::string_view context)
{
    text = trim(text);
    std::int64_t value = 0;
    const auto [ptr, ec] =
        std::from_chars(text.data(), text.data() + text.size(), value);
    if (ec != std::errc() || ptr != text.data() + text.size()) {
        return Status::parseError("cannot parse '", text,
                                  "' as an integer (", context, ")");
    }
    return value;
}

double
parseDouble(std::string_view text, std::string_view context)
{
    const Result<double> parsed = tryParseDouble(text, context);
    if (!parsed.isOk())
        fatal(parsed.status().message());
    return parsed.value();
}

std::int64_t
parseInt(std::string_view text, std::string_view context)
{
    const Result<std::int64_t> parsed = tryParseInt(text, context);
    if (!parsed.isOk())
        fatal(parsed.status().message());
    return parsed.value();
}

std::string
fmt(double value, int places)
{
    GAIA_ASSERT(places >= 0 && places <= 12, "bad precision ", places);
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", places, value);
    return buf;
}

std::string
fmtPercent(double fraction, int places)
{
    const double pct = fraction * 100.0;
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%+.*f%%", places, pct);
    return buf;
}

bool
startsWith(std::string_view text, std::string_view prefix)
{
    return text.substr(0, prefix.size()) == prefix;
}

std::string
toLower(std::string_view text)
{
    std::string out(text);
    for (char &c : out)
        c = static_cast<char>(
            std::tolower(static_cast<unsigned char>(c)));
    return out;
}

std::vector<std::string>
expandEqualsArgs(const std::vector<std::string> &args)
{
    std::vector<std::string> expanded;
    expanded.reserve(args.size());
    for (const std::string &arg : args) {
        const std::size_t eq = arg.find('=');
        if (startsWith(arg, "--") && eq != std::string::npos) {
            expanded.push_back(arg.substr(0, eq));
            expanded.push_back(arg.substr(eq + 1));
        } else {
            expanded.push_back(arg);
        }
    }
    return expanded;
}

} // namespace gaia
