/**
 * @file
 * Deterministic pseudo-random number generation for trace synthesis
 * and eviction modelling.
 *
 * All stochastic behaviour in GAIA flows through gaia::Rng so that
 * every experiment is exactly reproducible from its seed. The core
 * generator is xoshiro256**, seeded via SplitMix64 — fast, high
 * quality, and independent of the (implementation-defined) standard
 * library distributions: the sampling helpers below are written
 * out explicitly so results are identical across toolchains.
 */

#ifndef GAIA_COMMON_RNG_H
#define GAIA_COMMON_RNG_H

#include <array>
#include <cstdint>
#include <vector>

namespace gaia {

/**
 * Deterministic random source. Copyable: copies continue the same
 * stream independently from the point of the copy.
 */
class Rng
{
  public:
    /** Seed the generator; the same seed reproduces the stream. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [lo, hi] inclusive; requires lo <= hi. */
    std::int64_t uniformInt(std::int64_t lo, std::int64_t hi);

    /** Exponential with the given mean (mean > 0). */
    double exponential(double mean);

    /** Standard normal via Box–Muller (deterministic pairing). */
    double normal();

    /** Normal with given mean and standard deviation. */
    double normal(double mean, double stddev);

    /**
     * Log-normal parameterized by the underlying normal's mu/sigma,
     * i.e. exp(N(mu, sigma)).
     */
    double lognormal(double mu, double sigma);

    /** Bernoulli trial with success probability p in [0, 1]. */
    bool bernoulli(double p);

    /**
     * Sample an index in [0, weights.size()) with probability
     * proportional to weights (all non-negative, sum > 0).
     */
    std::size_t discrete(const std::vector<double> &weights);

    /**
     * Sample a geometric "first success" count in {1, 2, ...} with
     * per-trial success probability p in (0, 1]. Used for spot
     * eviction: the hour (1-based) in which the instance is evicted.
     */
    std::int64_t geometric(double p);

    /** Derive an independent child stream (e.g., per region/job). */
    Rng fork();

  private:
    std::array<std::uint64_t, 4> state_;
    double cached_normal_ = 0.0;
    bool has_cached_normal_ = false;
};

} // namespace gaia

#endif // GAIA_COMMON_RNG_H
