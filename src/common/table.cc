#include "common/table.h"

#include <algorithm>
#include <sstream>

#include "common/logging.h"
#include "common/strings.h"

namespace gaia {

TextTable::TextTable(std::string title,
                     std::vector<std::string> header)
    : title_(std::move(title)), header_(std::move(header))
{
    GAIA_ASSERT(!header_.empty(), "table needs at least one column");
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    GAIA_ASSERT(cells.size() == header_.size(), "row width ",
                cells.size(), " != header width ", header_.size());
    rows_.push_back(std::move(cells));
}

void
TextTable::addRow(const std::string &label,
                  const std::vector<double> &values, int places)
{
    GAIA_ASSERT(values.size() + 1 == header_.size(),
                "label+values width mismatch");
    std::vector<std::string> cells;
    cells.reserve(values.size() + 1);
    cells.push_back(label);
    for (double v : values)
        cells.push_back(fmt(v, places));
    addRow(std::move(cells));
}

void
TextTable::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c)
        widths[c] = header_[c].size();
    for (const auto &row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    std::size_t total = 0;
    for (std::size_t w : widths)
        total += w + 2;

    os << "\n== " << title_ << " ==\n";
    auto emit_row = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            os << cells[c];
            const std::size_t pad = widths[c] - cells[c].size() + 2;
            if (c + 1 < cells.size())
                os << std::string(pad, ' ');
        }
        os << '\n';
    };
    emit_row(header_);
    os << std::string(total, '-') << '\n';
    for (const auto &row : rows_)
        emit_row(row);
}

std::string
TextTable::toString() const
{
    std::ostringstream oss;
    print(oss);
    return oss.str();
}

} // namespace gaia
