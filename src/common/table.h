/**
 * @file
 * Aligned text-table rendering for the benchmark harness. Every
 * figure-reproduction binary prints its series through TextTable so
 * output is easy to eyeball and to diff against EXPERIMENTS.md.
 */

#ifndef GAIA_COMMON_TABLE_H
#define GAIA_COMMON_TABLE_H

#include <ostream>
#include <string>
#include <vector>

namespace gaia {

/**
 * A simple column-aligned table with a title and header row.
 * Cells are strings; numeric helpers format through gaia::fmt().
 */
class TextTable
{
  public:
    TextTable(std::string title, std::vector<std::string> header);

    /** Append a pre-formatted row (must match header width). */
    void addRow(std::vector<std::string> cells);

    /**
     * Append a row given a label plus numeric values, formatted to
     * `places` decimals.
     */
    void addRow(const std::string &label,
                const std::vector<double> &values, int places = 3);

    /** Render with padding and a rule under the header. */
    void print(std::ostream &os) const;

    /** Render to a string (tests). */
    std::string toString() const;

    std::size_t rowCount() const { return rows_.size(); }

  private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace gaia

#endif // GAIA_COMMON_TABLE_H
