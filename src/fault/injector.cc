#include "fault/injector.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace gaia {

namespace {

/** Earliest hour whose window of `duration` could cover `t`. */
SlotIndex
firstCandidateSlot(Seconds t, Seconds duration)
{
    const Seconds earliest = t - duration + 1;
    return earliest > 0 ? slotOf(earliest) : 0;
}

} // namespace

FaultInjector::FaultInjector(const FaultSpec &spec) : spec_(spec)
{
    const Status valid = spec_.validate();
    GAIA_ASSERT(valid.isOk(),
                "invalid fault spec passed to the injector "
                "(validate untrusted specs first): ",
                valid.message());
}

std::uint64_t
FaultInjector::hash(Kind kind, std::uint64_t value) const
{
    // SplitMix64 finalizer over a domain-separated key, matching
    // CarbonInfoService::noiseFactor's construction.
    std::uint64_t x = value * 0x9e3779b97f4a7c15ULL +
                      static_cast<std::uint64_t>(kind) *
                          0xbf58476d1ce4e5b9ULL +
                      spec_.seed;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return x;
}

bool
FaultInjector::roll(Kind kind, std::uint64_t value,
                    double rate) const
{
    if (rate <= 0.0)
        return false;
    if (rate >= 1.0)
        return true;
    // Map the hash to [0, 1); the comparison is exact and
    // deterministic — no RNG stream to advance.
    const double u = static_cast<double>(hash(kind, value) >> 11) *
                     0x1.0p-53;
    return u < rate;
}

bool
FaultInjector::windowCovers(Kind kind, double rate,
                            Seconds duration, Seconds t) const
{
    if (rate <= 0.0 || t < 0)
        return false;
    const SlotIndex last = slotOf(t);
    for (SlotIndex s = firstCandidateSlot(t, duration); s <= last;
         ++s) {
        if (roll(kind, static_cast<std::uint64_t>(s), rate) &&
            slotStart(s) + duration > t)
            return true;
    }
    return false;
}

bool
FaultInjector::outageAt(Seconds t) const
{
    return windowCovers(Kind::Outage, spec_.outage_rate,
                        spec_.outage_duration, t);
}

bool
FaultInjector::staleAt(Seconds t) const
{
    return windowCovers(Kind::Stale, spec_.stale_rate,
                        spec_.stale_duration, t);
}

Seconds
FaultInjector::staleFreezeAt(Seconds t) const
{
    GAIA_ASSERT(staleAt(t), "staleFreezeAt() outside a stale "
                "window");
    const SlotIndex last = slotOf(t);
    for (SlotIndex s = firstCandidateSlot(t, spec_.stale_duration);
         s <= last; ++s) {
        if (roll(Kind::Stale, static_cast<std::uint64_t>(s),
                 spec_.stale_rate) &&
            slotStart(s) + spec_.stale_duration > t)
            return slotStart(s);
    }
    panic("staleFreezeAt: no covering window despite staleAt");
}

bool
FaultInjector::spikeAt(Seconds t) const
{
    return windowCovers(Kind::Spike, spec_.spike_rate,
                        spec_.spike_duration, t);
}

bool
FaultInjector::gapSlot(SlotIndex slot) const
{
    return slot >= 0 &&
           roll(Kind::Gap, static_cast<std::uint64_t>(slot),
                spec_.gap_rate);
}

Seconds
FaultInjector::stormInstant(SlotIndex slot) const
{
    if (!roll(Kind::Storm, static_cast<std::uint64_t>(slot),
              spec_.storm_rate))
        return -1;
    const Seconds offset = static_cast<Seconds>(
        hash(Kind::StormOffset, static_cast<std::uint64_t>(slot)) %
        static_cast<std::uint64_t>(kSecondsPerHour));
    return slotStart(slot) + offset;
}

Seconds
FaultInjector::firstStormIn(Seconds from, Seconds to) const
{
    if (spec_.storm_rate <= 0.0 || to <= from)
        return -1;
    const Seconds start = std::max<Seconds>(from, 0);
    const SlotIndex last = slotOf(std::max<Seconds>(to - 1, 0));
    for (SlotIndex s = slotOf(start); s <= last; ++s) {
        const Seconds instant = stormInstant(s);
        if (instant >= from && instant < to)
            return instant;
    }
    return -1;
}

bool
FaultInjector::straggler(std::uint64_t job_id) const
{
    return roll(Kind::Straggler, job_id, spec_.straggler_rate);
}

Seconds
FaultInjector::stretched(Seconds length) const
{
    const double scaled = std::ceil(static_cast<double>(length) *
                                    spec_.straggler_factor);
    return std::max<Seconds>(static_cast<Seconds>(scaled), length);
}

bool
FaultInjector::delayedStart(std::uint64_t job_id) const
{
    return roll(Kind::Delay, job_id, spec_.delay_rate);
}

} // namespace gaia
