/**
 * @file
 * Declarative fault-injection configuration.
 *
 * A FaultSpec names every degraded-world knob as plain data: rates
 * and durations of carbon-source faults (outages, stale-forecast
 * windows, trace gaps, spike bursts), cluster-side faults (spot
 * revocation storms, straggler slowdowns, delayed job starts), and
 * the scheduler's degradation ladder (retry budget, backoff, spot
 * re-attempts). Like ScenarioSpec it is cheap to copy and vary, so
 * a resilience sweep is just a vector of scenarios whose fault
 * members differ.
 *
 * Specs parse from a compact clause syntax used by the --fault CLI
 * flag, e.g.
 *
 *     outage:rate=0.05,hours=2;storm:rate=0.1
 *
 * where each clause is `kind:key=value[,key=value...]` and clauses
 * merge left to right. All randomness downstream is a pure hash of
 * (seed, kind, slot-or-job), so equal specs reproduce bit-identical
 * simulations regardless of query order or thread count (see
 * fault/injector.h).
 */

#ifndef GAIA_FAULT_FAULT_SPEC_H
#define GAIA_FAULT_FAULT_SPEC_H

#include <cstdint>
#include <string>

#include "common/status.h"
#include "common/time.h"

namespace gaia {

/** All fault-injection knobs for one simulation, as plain data. */
struct FaultSpec
{
    // --- Carbon-source faults (FaultyCarbonSource) ---

    /** Per-hour probability that a source outage window starts. */
    double outage_rate = 0.0;
    /** Length of each outage window. */
    Seconds outage_duration = 2 * kSecondsPerHour;

    /** Per-hour probability that a stale-forecast window starts. */
    double stale_rate = 0.0;
    /** Length of each stale window. */
    Seconds stale_duration = 4 * kSecondsPerHour;

    /** Per-hour probability that a spike burst starts. */
    double spike_rate = 0.0;
    /** Length of each spike burst. */
    Seconds spike_duration = 2 * kSecondsPerHour;
    /** Multiplier applied to future-slot forecasts during a burst. */
    double spike_factor = 3.0;

    /** Per-slot probability that the trace feed misses the slot. */
    double gap_rate = 0.0;

    // --- Cluster-side faults (OnlineScheduler) ---

    /** Per-hour probability of a spot revocation storm. */
    double storm_rate = 0.0;

    /** Per-job probability of a straggler slowdown. */
    double straggler_rate = 0.0;
    /** Runtime multiplier for straggler jobs (> 1). */
    double straggler_factor = 2.0;

    /** Per-job probability of a delayed start. */
    double delay_rate = 0.0;
    /** Submission-to-arrival delay for affected jobs. */
    Seconds delay_duration = 30 * kSecondsPerMinute;

    // --- Degradation ladder (scheduler response) ---

    /** Retry attempts against an unavailable source before the
     *  scheduler falls back to a carbon-oblivious plan. */
    int cis_max_retries = 3;
    /** First retry backoff; doubles per attempt. */
    Seconds cis_retry_backoff = 5 * kSecondsPerMinute;
    /** Spot re-attempts per job after storm revocations before the
     *  restart falls back to reserved/on-demand capacity. */
    int storm_spot_retries = 3;

    /** Selects the deterministic fault stream. */
    std::uint64_t seed = 1;

    /** Any carbon-source fault configured (decorator needed). */
    bool anyCisFault() const;
    /** Any cluster-side fault configured. */
    bool anyClusterFault() const;
    /** Any fault at all configured (injector needed). */
    bool enabled() const;

    /** Input validation for untrusted (CLI/scenario) specs. */
    Status validate() const;

    /**
     * Canonical content key: equal keys configure identical fault
     * streams. Disabled specs key to "off".
     */
    std::string key() const;

    /**
     * Merge the clause list `text` into this spec (see file
     * comment for the grammar). Unknown kinds/keys and malformed
     * numbers error without modifying the spec's validity
     * guarantees; call validate() afterwards.
     */
    Status merge(const std::string &text);

    /** Parse a clause list into a default-initialized spec. */
    static Result<FaultSpec> parse(const std::string &text);
};

} // namespace gaia

#endif // GAIA_FAULT_FAULT_SPEC_H
