#include "fault/faulty_source.h"

#include <algorithm>
#include <vector>

#include "common/logging.h"
#include "common/stats.h"

namespace gaia {

FaultyCarbonSource::FaultyCarbonSource(const CarbonInfoSource &inner,
                                       const FaultInjector &faults)
    : inner_(inner), faults_(faults)
{
}

double
FaultyCarbonSource::rawAtSlot(Seconds now, SlotIndex slot) const
{
    SlotIndex s = slot;
    // Last observation carried forward across gap slots; a gap at
    // the very start of the trace falls through to the inner value
    // (there is nothing earlier to carry).
    while (s > 0 && faults_.gapSlot(s))
        --s;
    return inner_.forecastAtSlot(now, s);
}

double
FaultyCarbonSource::forecastAtSlot(Seconds now, SlotIndex slot) const
{
    if (faults_.staleAt(now)) {
        // Feed frozen at the stale window's start: every slot at or
        // after the freeze answers with the freeze slot's value, as
        // a persistence forecast from the freeze instant would.
        const Seconds freeze = faults_.staleFreezeAt(now);
        const SlotIndex freeze_slot = slotOf(freeze);
        if (slot >= freeze_slot)
            return rawAtSlot(freeze, freeze_slot);
        return rawAtSlot(freeze, slot);
    }
    double value = rawAtSlot(now, slot);
    if (slot > slotOf(std::max<Seconds>(now, 0)) &&
        faults_.spikeAt(now)) {
        // Corrupted forecast generation: future slots only; the
        // current slot is a measurement.
        value *= faults_.spec().spike_factor;
    }
    return value;
}

double
FaultyCarbonSource::intensityAt(Seconds t) const
{
    if (faults_.staleAt(t)) {
        const Seconds freeze = faults_.staleFreezeAt(t);
        return rawAtSlot(freeze, slotOf(freeze));
    }
    return rawAtSlot(t, slotOf(std::max<Seconds>(t, 0)));
}

double
FaultyCarbonSource::forecastIntegrate(Seconds now, Seconds from,
                                      Seconds to) const
{
    GAIA_ASSERT(from <= to, "forecastIntegrate: from > to");
    double total = 0.0;
    Seconds cursor = from;
    while (cursor < to) {
        const SlotIndex slot = slotOf(std::max<Seconds>(cursor, 0));
        const Seconds slot_end = slotStart(slot) + kSecondsPerHour;
        const Seconds seg_end = std::min(slot_end, to);
        total += forecastAtSlot(now, slot) *
                 static_cast<double>(seg_end - cursor);
        cursor = seg_end;
    }
    return total;
}

SlotIndex
FaultyCarbonSource::forecastMinSlot(Seconds now, Seconds from,
                                    Seconds to) const
{
    GAIA_ASSERT(from < to, "forecastMinSlot: empty window");
    const SlotIndex first = slotOf(std::max<Seconds>(from, 0));
    const SlotIndex last = slotOf(std::max<Seconds>(to - 1, 0));
    SlotIndex best = first;
    double best_value = forecastAtSlot(now, first);
    for (SlotIndex s = first + 1; s <= last; ++s) {
        const double v = forecastAtSlot(now, s);
        if (v < best_value) {
            best_value = v;
            best = s;
        }
    }
    return best;
}

double
FaultyCarbonSource::forecastPercentile(Seconds now, Seconds from,
                                       Seconds to, double p) const
{
    GAIA_ASSERT(from < to, "forecastPercentile: empty window");
    const SlotIndex first = slotOf(std::max<Seconds>(from, 0));
    const SlotIndex last = slotOf(std::max<Seconds>(to - 1, 0));
    std::vector<double> window;
    window.reserve(static_cast<std::size_t>(last - first + 1));
    for (SlotIndex s = first; s <= last; ++s)
        window.push_back(forecastAtSlot(now, s));
    return percentile(std::move(window), p);
}

} // namespace gaia
