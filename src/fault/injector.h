/**
 * @file
 * Deterministic, seed-driven fault injector.
 *
 * Every fault decision is a pure SplitMix64-style hash of
 * (seed, fault kind, hour slot or job id) — the same construction
 * CarbonInfoService uses for forecast noise. There is no mutable
 * RNG stream: whether hour `h` starts an outage window, where a
 * storm strikes inside hour `h`, or whether job `j` straggles is a
 * function of the spec alone, independent of query order, sweep
 * cell scheduling, or thread count. Identical FaultSpecs therefore
 * reproduce bit-identical simulations (resultFingerprint() equal),
 * which the chaos-smoke CI job pins end to end.
 *
 * Window faults (outage, stale, spike) start at hour boundaries:
 * hour `h` *starts* a window of kind K when hash(seed, K, h) falls
 * below the configured rate, and the window then covers
 * [slotStart(h), slotStart(h) + duration). Windows may overlap;
 * coverage, not start, is what queries observe. Storms are instants:
 * a storm hour hosts one revocation instant placed at a hashed
 * offset within the hour, and every spot slice overlapping that
 * instant is revoked together (correlated mass eviction), unlike
 * the independent per-slice cloud/eviction model.
 */

#ifndef GAIA_FAULT_INJECTOR_H
#define GAIA_FAULT_INJECTOR_H

#include <cstdint>

#include "common/time.h"
#include "fault/fault_spec.h"

namespace gaia {

/** Pure-function oracle for every fault decision (see file doc). */
class FaultInjector
{
  public:
    /**
     * Asserts on a spec validate() would reject — untrusted specs
     * must be validated first (runScenario does).
     */
    explicit FaultInjector(const FaultSpec &spec);

    const FaultSpec &spec() const { return spec_; }

    /** Any carbon-source fault configured (decorator needed). */
    bool cisFaults() const { return spec_.anyCisFault(); }
    /** Storm model active (enables spot re-attempts on restart). */
    bool storms() const { return spec_.storm_rate > 0.0; }

    /** Source outage covering instant `t`. */
    bool outageAt(Seconds t) const;

    /** Stale-forecast window covering instant `t`. */
    bool staleAt(Seconds t) const;

    /**
     * The instant whose data a stale window serves: the start of
     * the earliest stale window covering `t` (the moment the feed
     * froze). Requires staleAt(t).
     */
    Seconds staleFreezeAt(Seconds t) const;

    /** Spike burst covering instant `t`. */
    bool spikeAt(Seconds t) const;

    /** Trace feed missing hourly slot `slot`. */
    bool gapSlot(SlotIndex slot) const;

    /**
     * Earliest storm instant within [from, to), or -1 when no storm
     * strikes the interval. A storm exactly at `to` does not revoke
     * a slice ending there — half-open, like every interval in the
     * simulator.
     */
    Seconds firstStormIn(Seconds from, Seconds to) const;

    /** Job `job_id` suffers a straggler slowdown. */
    bool straggler(std::uint64_t job_id) const;
    /** Straggler-inflated runtime for a nominal `length`. */
    Seconds stretched(Seconds length) const;

    /** Job `job_id` arrives late. */
    bool delayedStart(std::uint64_t job_id) const;
    /** The configured submission-to-arrival delay. */
    Seconds startDelay() const { return spec_.delay_duration; }

  private:
    /** Fault-kind domain separators for the hash. */
    enum class Kind : std::uint64_t
    {
        Outage = 1,
        Stale = 2,
        Spike = 3,
        Gap = 4,
        Storm = 5,
        StormOffset = 6,
        Straggler = 7,
        Delay = 8,
    };

    std::uint64_t hash(Kind kind, std::uint64_t value) const;
    /** hash(kind, value) falls below `rate` (Bernoulli draw). */
    bool roll(Kind kind, std::uint64_t value, double rate) const;
    /** A window of `kind` covers `t` (scan candidate starts). */
    bool windowCovers(Kind kind, double rate, Seconds duration,
                      Seconds t) const;
    /** Storm instant within hour `slot`; -1 when calm. */
    Seconds stormInstant(SlotIndex slot) const;

    FaultSpec spec_;
};

} // namespace gaia

#endif // GAIA_FAULT_INJECTOR_H
