#include "fault/fault_spec.h"

#include <sstream>
#include <vector>

#include "common/strings.h"

namespace gaia {

namespace {

/** Bound on window/delay durations so injector window scans stay
 *  O(slots-per-window) with a small constant. */
constexpr Seconds kMaxFaultDuration = 7 * kSecondsPerDay;

Status
checkRate(const char *what, double rate)
{
    GAIA_REQUIRE(rate >= 0.0 && rate <= 1.0, what,
                 " rate must be in [0, 1], got ", rate);
    return Status::ok();
}

Status
checkDuration(const char *what, Seconds duration)
{
    GAIA_REQUIRE(duration > 0, what, " duration must be positive, "
                 "got ", duration, "s");
    GAIA_REQUIRE(duration <= kMaxFaultDuration, what,
                 " duration exceeds the ", kMaxFaultDuration /
                 kSecondsPerDay, "-day bound: ", duration, "s");
    return Status::ok();
}

/** One `key=value` pair inside a clause. */
struct Setting
{
    std::string key;
    double value = 0.0;
};

Result<std::vector<Setting>>
parseSettings(const std::string &kind, const std::string &body)
{
    std::vector<Setting> settings;
    for (const std::string &pair : split(body, ',')) {
        const std::size_t eq = pair.find('=');
        GAIA_REQUIRE(eq != std::string::npos, "fault clause '", kind,
                     "': expected key=value, got '", pair, "'");
        Setting s;
        s.key = trim(pair.substr(0, eq));
        GAIA_TRY_ASSIGN(s.value,
                        tryParseDouble(trim(pair.substr(eq + 1)),
                                       "fault " + kind + " " +
                                           s.key));
        settings.push_back(std::move(s));
    }
    GAIA_REQUIRE(!settings.empty(), "fault clause '", kind,
                 "' has no settings");
    return settings;
}

/** Applies one clause's settings, erroring on keys the kind does
 *  not accept. */
Status
applyClause(FaultSpec &spec, const std::string &kind,
            const std::vector<Setting> &settings)
{
    for (const Setting &s : settings) {
        bool ok = false;
        if (s.key == "rate") {
            ok = true;
            if (kind == "outage")
                spec.outage_rate = s.value;
            else if (kind == "stale")
                spec.stale_rate = s.value;
            else if (kind == "spike")
                spec.spike_rate = s.value;
            else if (kind == "gap")
                spec.gap_rate = s.value;
            else if (kind == "storm")
                spec.storm_rate = s.value;
            else if (kind == "straggler")
                spec.straggler_rate = s.value;
            else if (kind == "delay")
                spec.delay_rate = s.value;
            else
                ok = false;
        } else if (s.key == "hours") {
            const Seconds duration = hours(s.value);
            ok = true;
            if (kind == "outage")
                spec.outage_duration = duration;
            else if (kind == "stale")
                spec.stale_duration = duration;
            else if (kind == "spike")
                spec.spike_duration = duration;
            else
                ok = false;
        } else if (s.key == "minutes" && kind == "delay") {
            spec.delay_duration = minutes(s.value);
            ok = true;
        } else if (s.key == "factor") {
            ok = true;
            if (kind == "spike")
                spec.spike_factor = s.value;
            else if (kind == "straggler")
                spec.straggler_factor = s.value;
            else
                ok = false;
        }
        GAIA_REQUIRE(ok, "fault clause '", kind,
                     "' does not accept key '", s.key, "'");
    }
    return Status::ok();
}

} // namespace

bool
FaultSpec::anyCisFault() const
{
    return outage_rate > 0.0 || stale_rate > 0.0 ||
           spike_rate > 0.0 || gap_rate > 0.0;
}

bool
FaultSpec::anyClusterFault() const
{
    return storm_rate > 0.0 || straggler_rate > 0.0 ||
           delay_rate > 0.0;
}

bool
FaultSpec::enabled() const
{
    return anyCisFault() || anyClusterFault();
}

Status
FaultSpec::validate() const
{
    GAIA_TRY(checkRate("outage", outage_rate));
    GAIA_TRY(checkRate("stale", stale_rate));
    GAIA_TRY(checkRate("spike", spike_rate));
    GAIA_TRY(checkRate("gap", gap_rate));
    GAIA_TRY(checkRate("storm", storm_rate));
    GAIA_TRY(checkRate("straggler", straggler_rate));
    GAIA_TRY(checkRate("delay", delay_rate));
    GAIA_TRY(checkDuration("outage", outage_duration));
    GAIA_TRY(checkDuration("stale", stale_duration));
    GAIA_TRY(checkDuration("spike", spike_duration));
    GAIA_TRY(checkDuration("delay", delay_duration));
    GAIA_REQUIRE(spike_factor > 0.0,
                 "spike factor must be positive, got ",
                 spike_factor);
    GAIA_REQUIRE(straggler_factor >= 1.0,
                 "straggler factor must be >= 1, got ",
                 straggler_factor);
    GAIA_REQUIRE(cis_max_retries >= 0 && cis_max_retries <= 16,
                 "cis retry budget must be in [0, 16], got ",
                 cis_max_retries);
    GAIA_REQUIRE(cis_retry_backoff > 0,
                 "cis retry backoff must be positive, got ",
                 cis_retry_backoff, "s");
    GAIA_REQUIRE(storm_spot_retries >= 0 &&
                     storm_spot_retries <= 16,
                 "storm spot-retry budget must be in [0, 16], "
                 "got ", storm_spot_retries);
    return Status::ok();
}

std::string
FaultSpec::key() const
{
    if (!enabled())
        return "off";
    std::ostringstream oss;
    if (outage_rate > 0.0)
        oss << "outage=" << outage_rate << "/" << outage_duration
            << ";";
    if (stale_rate > 0.0)
        oss << "stale=" << stale_rate << "/" << stale_duration
            << ";";
    if (spike_rate > 0.0)
        oss << "spike=" << spike_rate << "/" << spike_duration
            << "x" << spike_factor << ";";
    if (gap_rate > 0.0)
        oss << "gap=" << gap_rate << ";";
    if (storm_rate > 0.0)
        oss << "storm=" << storm_rate << ";";
    if (straggler_rate > 0.0)
        oss << "straggler=" << straggler_rate << "x"
            << straggler_factor << ";";
    if (delay_rate > 0.0)
        oss << "delay=" << delay_rate << "/" << delay_duration
            << ";";
    oss << "retries=" << cis_max_retries << "/"
        << cis_retry_backoff << ";spot=" << storm_spot_retries
        << ";seed=" << seed;
    return oss.str();
}

Status
FaultSpec::merge(const std::string &text)
{
    for (const std::string &raw : split(text, ';')) {
        const std::string clause(trim(raw));
        if (clause.empty())
            continue;
        const std::size_t colon = clause.find(':');
        GAIA_REQUIRE(colon != std::string::npos,
                     "fault clause '", clause,
                     "' must be kind:key=value[,key=value...]");
        const std::string kind(trim(clause.substr(0, colon)));
        GAIA_REQUIRE(kind == "outage" || kind == "stale" ||
                         kind == "spike" || kind == "gap" ||
                         kind == "storm" || kind == "straggler" ||
                         kind == "delay",
                     "unknown fault kind '", kind,
                     "'; expected outage, stale, spike, gap, "
                     "storm, straggler, or delay");
        GAIA_TRY_ASSIGN(
            const std::vector<Setting> settings,
            parseSettings(kind, clause.substr(colon + 1)));
        GAIA_TRY(applyClause(*this, kind, settings));
    }
    return Status::ok();
}

Result<FaultSpec>
FaultSpec::parse(const std::string &text)
{
    FaultSpec spec;
    GAIA_TRY(spec.merge(text));
    GAIA_TRY(spec.validate());
    return spec;
}

} // namespace gaia
