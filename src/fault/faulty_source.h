/**
 * @file
 * Fault-injecting CarbonInfoSource decorator.
 *
 * Wraps any inner source and distorts what the *scheduler* sees —
 * accounting stays on the ground-truth trace() of the inner source,
 * because a flaky forecast feed does not change what the grid
 * actually emitted. Four carbon-source fault kinds compose:
 *
 *  - Outage: availableAt() is false inside outage windows; the
 *    scheduler's degradation ladder (retry, then carbon-oblivious
 *    fallback) decides what to do. Queries still answer, like a
 *    cached client library would.
 *  - Stale: inside a stale window every query is answered with the
 *    feed frozen at the window start — the current-slot
 *    "measurement" too, which is exactly how a stuck upstream looks
 *    to a consumer.
 *  - Spike: future-slot forecasts are multiplied by spike_factor
 *    while `now` is in a burst (a corrupted forecast generation);
 *    the current slot stays measured.
 *  - Gap: missing trace slots answer with the most recent non-gap
 *    slot's value (last-observation-carried-forward).
 *
 * All distortions are pure functions of (spec seed, slot), so the
 * decorator is deterministic and stateless; it never memoizes
 * (slotInvariantForecasts() is false) because stale/spike answers
 * depend on the query instant.
 */

#ifndef GAIA_FAULT_FAULTY_SOURCE_H
#define GAIA_FAULT_FAULTY_SOURCE_H

#include "core/cis.h"
#include "fault/injector.h"

namespace gaia {

/** CarbonInfoSource decorator injecting source-side faults. */
class FaultyCarbonSource final : public CarbonInfoSource
{
  public:
    /** Both collaborators must outlive the decorator. */
    FaultyCarbonSource(const CarbonInfoSource &inner,
                       const FaultInjector &faults);

    /** Ground truth passes through untouched (accounting input). */
    const CarbonTrace &trace() const override
    {
        return inner_.trace();
    }

    bool availableAt(Seconds now) const override
    {
        return !faults_.outageAt(now);
    }

    /** Stale/spike answers depend on the query instant, which
     *  breaks the PlanCache contract — never memoize. */
    bool slotInvariantForecasts() const override { return false; }

    double intensityAt(Seconds t) const override;
    double forecastAtSlot(Seconds now,
                          SlotIndex slot) const override;
    double forecastIntegrate(Seconds now, Seconds from,
                             Seconds to) const override;
    SlotIndex forecastMinSlot(Seconds now, Seconds from,
                              Seconds to) const override;
    double forecastPercentile(Seconds now, Seconds from, Seconds to,
                              double p) const override;

  private:
    /** Inner answer for `slot` with gap slots carried forward. */
    double rawAtSlot(Seconds now, SlotIndex slot) const;

    const CarbonInfoSource &inner_;
    const FaultInjector &faults_;
};

} // namespace gaia

#endif // GAIA_FAULT_FAULTY_SOURCE_H
