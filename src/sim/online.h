/**
 * @file
 * Online (incremental) GAIA scheduler.
 *
 * The paper designs GAIA "as a set of modules and services that can
 * be integrated into any existing cloud-enabled batch scheduler" —
 * the prototype intercepts live Slurm submissions. OnlineScheduler
 * is that embedding surface in this codebase: jobs are submitted
 * one at a time as they arrive, simulated time advances
 * incrementally, and the books can be read out whenever the caller
 * likes. The trace-driven simulateChecked() API is a thin batch
 * wrapper around this class, so both paths share one engine and one
 * accounting implementation.
 *
 * The event loop is allocation-free on the hot path: every handler
 * is a 16-byte tagged SimEvent carrying a job index into the
 * scheduler's job-state pool, dispatched through onEvent() — no
 * per-event closures. reserveJobs() pre-sizes the pool when the
 * population is known up front (the batch wrapper does this).
 *
 * Usage:
 *
 *     GAIA_TRY_ASSIGN(OnlineScheduler sched,
 *                     OnlineScheduler::create(
 *                         policy, queues, cis, cluster,
 *                         ResourceStrategy::ReservedFirst));
 *     GAIA_TRY(sched.submit(job1));  // at job1.submit
 *     sched.advanceTo(now);          // process starts/finishes
 *     GAIA_TRY(sched.submit(job2));
 *     sched.drain();                 // run everything to completion
 *     SimulationResult r = sched.finalize();
 */

#ifndef GAIA_SIM_ONLINE_H
#define GAIA_SIM_ONLINE_H

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cloud/eviction.h"
#include "cloud/reserved_pool.h"
#include "common/rng.h"
#include "common/status.h"
#include "core/cis.h"
#include "core/plan_cache.h"
#include "core/policy.h"
#include "core/queues.h"
#include "sim/cluster.h"
#include "sim/event_queue.h"
#include "sim/protocol.h"
#include "sim/results.h"

namespace gaia {

class FaultInjector;

/**
 * Incremental cluster scheduler/simulator. Single-threaded; all
 * referenced collaborators must outlive the scheduler.
 *
 * The driver-facing surface is ISchedulerProtocol (sim/protocol.h):
 * VirtualClockDriver replays traces for the batch simulator, the
 * serving layer's WallClockDriver paces a live stream. The named
 * methods below (submit/advanceTo/drain/finalize) remain for
 * embedders that hold the concrete class.
 */
class OnlineScheduler : public ISchedulerProtocol,
                        private EventQueue::Sink
{
  public:
    /**
     * Validating factory: checks the cluster/strategy combination
     * and returns a ready scheduler or the Status explaining what
     * is wrong with the input. Untrusted configuration must come
     * through here.
     *
     * @param policy    temporal scheduling policy
     * @param queues    queue configuration (calibrated J_avg)
     * @param cis       carbon information source (plain service or
     *                  a fault-injecting decorator)
     * @param cluster   cluster configuration; a zero
     *                  reservation_horizon is derived from the
     *                  observed schedule at finalize()
     * @param strategy  resource placement strategy
     * @param workload  label recorded in the result
     * @param faults    optional cluster-side fault injector (storms,
     *                  stragglers, delayed starts) and source of the
     *                  degradation-ladder knobs; nullptr = no faults
     */
    static Result<OnlineScheduler>
    create(const SchedulingPolicy &policy, const QueueConfig &queues,
           const CarbonInfoSource &cis, const ClusterConfig &cluster,
           ResourceStrategy strategy, std::string workload = "online",
           const FaultInjector *faults = nullptr);

    /**
     * Direct construction for pre-validated configuration; asserts
     * on a setup create() would have rejected.
     */
    OnlineScheduler(const SchedulingPolicy &policy,
                    const QueueConfig &queues,
                    const CarbonInfoSource &cis,
                    const ClusterConfig &cluster,
                    ResourceStrategy strategy,
                    std::string workload = "online",
                    const FaultInjector *faults = nullptr);

    OnlineScheduler(OnlineScheduler &&) = default;

    /**
     * Submit a job. Errors (rather than asserting) when the job's
     * submit time precedes the current simulation time, since live
     * feeds are untrusted input.
     */
    Status submit(const Job &job);

    /** Pre-size the job pool and event heap for `count` jobs. */
    void reserveJobs(std::size_t count);

    /**
     * Apply `profile` to every subsequently submitted job that does
     * not carry an enabled profile of its own — the scenario-level
     * `--elastic-profile` knob. Call before the affected submits.
     */
    void setDefaultElasticProfile(const ElasticProfile &profile);

    /** Current simulation time. */
    Seconds now() const override { return events_.now(); }

    /** Process every event up to and including time `t`. */
    void advanceTo(Seconds t);

    /** Process all remaining events (run to completion). */
    void drain();

    /** Jobs submitted so far. */
    std::size_t submittedJobs() const { return states_.size(); }

    // ISchedulerProtocol: the driver-facing aliases of the embedding
    // API above. Kept thin so a driver and a direct embedder observe
    // the same engine behaviour.
    Status onJobRelease(const Job &job) override
    {
        return submit(job);
    }

    void onTick(Seconds t) override { advanceTo(t); }

    /** Informational only (see ISchedulerProtocol): counted and
     *  flushed to the `serve.source_updates` metric; the engine
     *  re-probes the source lazily, so schedules never change. */
    void onSourceUpdate(Seconds t) override;

    void onDrain() override { drain(); }

    SimulationResult onSimulationEnd() override { return finalize(); }

    std::size_t releasedJobs() const override
    {
        return states_.size();
    }

    /** Jobs currently waiting for reserved capacity. */
    std::size_t pendingJobs() const { return pending_.size(); }

    /** Reserved cores currently busy. */
    int reservedCoresInUse() const { return pool_.inUse(); }

    /** This run's plan memoization counters (see core/plan_cache.h). */
    const PlanCache &planCache() const { return *plan_cache_; }

    /**
     * Close the books and return the result. The scheduler must be
     * drained; finalize() may be called once.
     */
    SimulationResult finalize();

  private:
    struct JobState
    {
        Job job;
        SchedulePlan plan;
        bool spot_eligible = false;
        bool pending = false;
        bool started = false;
        bool aborted = false;
        /** Carbon-source probes spent in the degradation ladder. */
        std::uint32_t cis_attempts = 0;
        /** Post-eviction spot re-attempts under the storm model. */
        std::uint32_t spot_retries = 0;
        JobOutcome outcome;
    };

    /** Event tags; payloads documented per tag. */
    enum Ev : std::uint32_t
    {
        /** a = job index. */
        EvArrival,
        /** a = job index, b = plan segment index. */
        EvPlaceSegment,
        /** a = job index, b = plan segment index. */
        EvPlaceSpotSegment,
        /** a = job index. */
        EvPlannedStart,
        /** a = job index; fires at the eviction instant. */
        EvRestartAfterEviction,
        /** a = cpus to return to the reserved pool. */
        EvPoolRelease,
        /**
         * a = job index; notification to the attached
         * ProtocolListener that the job settled. Scheduled only
         * while a listener is attached, so listener-free (batch)
         * runs dispatch a bit-identical event stream to the
         * pre-protocol engine.
         */
        EvJobEnd,
    };

    void onEvent(const SimEvent &event) override;

    bool usesReserved() const;
    bool spotEnabled() const;

    void onArrival(std::size_t idx);
    /** Degradation ladder on source outage: true = arrival handled
     *  (a backoff retry was scheduled); false = plan carbon-
     *  obliviously now. */
    bool retryArrivalLater(std::size_t idx);
    void dispatch(std::size_t idx);
    void followPlan(std::size_t idx, bool on_spot);
    void placeSegment(std::size_t idx, std::size_t seg_idx);
    void placeSpotSegment(std::size_t idx, std::size_t seg_idx);
    /** Run [from, to) of job `idx` on spot at `width` instances;
     *  evict at the earlier of the independent sampled eviction and
     *  the first storm. One eviction draw covers the whole gang, so
     *  the RNG stream is identical to the width-1 stream.
     *  `final_slice` marks the slice whose successful completion
     *  settles the job (last planned segment, or a restart that
     *  covers the whole job). */
    void runSpotSlice(std::size_t idx, Seconds from, Seconds to,
                      int width, bool final_slice);
    /** Schedule the EvJobEnd notification for `idx` at `at`; no-op
     *  without an attached listener. Called exactly once per job, at
     *  the record site of its final non-lost segment. */
    void notifyJobEnd(std::size_t idx, Seconds at);
    void startOnReserved(std::size_t idx, Seconds at);
    void recordSegment(std::size_t idx, Seconds from, Seconds to,
                       PurchaseOption option, bool lost,
                       int width = 1);
    void onPlannedStart(std::size_t idx);
    void drainPending();
    void restartAfterEviction(std::size_t idx, Seconds at);
    void finalizeInto(SimulationResult &result);

    const SchedulingPolicy &policy_;
    const QueueConfig &queues_;
    const CarbonInfoSource &cis_;
    ClusterConfig cluster_;
    ResourceStrategy strategy_;
    std::string workload_;
    /** Scenario-wide elastic profile applied at submit() to jobs
     *  without one of their own; disabled by default. */
    ElasticProfile default_elastic_;
    /** Cluster-side fault oracle; nullptr = faults disabled. */
    const FaultInjector *faults_ = nullptr;

    EventQueue events_;
    /** Behind a pointer so the scheduler stays movable (the cache
     *  holds a mutex); one cache per simulation, plans within a run
     *  share slot-invariant boundary work. */
    std::unique_ptr<PlanCache> plan_cache_ =
        std::make_unique<PlanCache>();
    ReservedPool pool_;
    EvictionModel eviction_;
    Rng rng_;
    /** Indexed job pool; events reference jobs by index, so growth
     *  is free to relocate the vector. */
    std::vector<JobState> states_;
    std::multimap<Seconds, std::size_t> pending_;
    Seconds horizon_ = 0;
    bool horizon_overrun_warned_ = false;
    bool finalized_ = false;
    /** Events seen by onEvent(); a plain member (no atomic — the
     *  dispatch loop is single-threaded) flushed to the process-wide
     *  sim.events_dispatched counter once at finalize(). */
    std::uint64_t events_dispatched_ = 0;
    /** Source-availability edges reported by the driver, flushed to
     *  serve.source_updates at finalize(). */
    std::uint64_t source_updates_ = 0;
    /** Fault bookkeeping, flushed like events_dispatched_. */
    std::uint64_t faults_injected_ = 0;
    std::uint64_t cis_retries_ = 0;
    std::uint64_t degraded_plans_ = 0;
    /** Per-instance spot re-attempts under storms: each gang retry
     *  of a width-w job counts w (instances re-acquire separately). */
    std::uint64_t spot_instance_retries_ = 0;
    /** Instance-seconds executed under degraded (carbon-oblivious)
     *  plans; flushed as whole instance-hours. */
    std::uint64_t degraded_instance_seconds_ = 0;
};

} // namespace gaia

#endif // GAIA_SIM_ONLINE_H
