/**
 * @file
 * VirtualClockDriver — the batch driver of ISchedulerProtocol.
 *
 * Replays a pre-materialised JobTrace against a scheduling engine in
 * virtual time: release every job in submit order, then drain. The
 * engine's event queue does all the clock-keeping, so there is no
 * explicit ticking — this is exactly the feed loop the batch
 * simulator has always run, expressed against the protocol so the
 * serving layer's wall-clock driver can be held to byte-identical
 * results (see tests/serve/test_driver_parity.cc).
 */

#ifndef GAIA_SIM_DRIVER_H
#define GAIA_SIM_DRIVER_H

#include "common/status.h"
#include "sim/protocol.h"
#include "workload/job.h"

namespace gaia {

/** Trace-replay driver; see the file comment. */
class VirtualClockDriver
{
  public:
    /** `protocol` must outlive the driver. */
    explicit VirtualClockDriver(ISchedulerProtocol &protocol)
        : protocol_(protocol)
    {
    }

    /**
     * Release every job of `trace` (sorted by submit time, so no
     * release can land in the past), then drain the engine. May be
     * called more than once for incremental multi-trace feeds.
     */
    Status replay(const JobTrace &trace);

    /** Close the engine's books; call once, after the replays. */
    SimulationResult finish() { return protocol_.onSimulationEnd(); }

  private:
    ISchedulerProtocol &protocol_;
};

} // namespace gaia

#endif // GAIA_SIM_DRIVER_H
