/**
 * @file
 * Discrete-event simulation core: a time-ordered queue of handlers.
 *
 * Events at equal timestamps run in scheduling order (a monotonic
 * sequence number breaks ties), which keeps every simulation fully
 * deterministic.
 */

#ifndef GAIA_SIM_EVENT_QUEUE_H
#define GAIA_SIM_EVENT_QUEUE_H

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/time.h"

namespace gaia {

/** Minimal deterministic event queue. */
class EventQueue
{
  public:
    using Handler = std::function<void()>;

    /** Schedule `handler` at absolute time `when` (>= now()). */
    void schedule(Seconds when, Handler handler);

    /**
     * Schedule with an explicit same-timestamp priority (lower runs
     * first; the plain overload uses priority 1). Job arrivals use
     * priority 0 so batch-fed and incrementally-fed simulations
     * order timestamp ties identically.
     */
    void schedule(Seconds when, int priority, Handler handler);

    /** Pop and run the earliest event; false when drained. */
    bool runNext();

    /** Run until the queue is empty. */
    void runAll();

    /**
     * Run every event with time <= `until` (events they spawn
     * included), then set now() to `until`. Enables incremental
     * (online) simulation.
     */
    void runUntil(Seconds until);

    /** Timestamp of the earliest pending event; -1 when empty. */
    Seconds nextEventTime() const;

    /** Current simulation time (start of the last-run event). */
    Seconds now() const { return now_; }

    bool empty() const { return heap_.empty(); }
    std::size_t pendingCount() const { return heap_.size(); }

  private:
    struct Event
    {
        Seconds time;
        int priority;
        std::uint64_t seq;
        Handler handler;
    };
    struct Later
    {
        bool operator()(const Event &a, const Event &b) const
        {
            if (a.time != b.time)
                return a.time > b.time;
            if (a.priority != b.priority)
                return a.priority > b.priority;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Event, std::vector<Event>, Later> heap_;
    std::uint64_t next_seq_ = 0;
    Seconds now_ = 0;
};

} // namespace gaia

#endif // GAIA_SIM_EVENT_QUEUE_H
