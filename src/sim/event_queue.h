/**
 * @file
 * Discrete-event simulation core: a time-ordered queue of small POD
 * events dispatched to a sink.
 *
 * Events at equal timestamps run in scheduling order (a monotonic
 * sequence number breaks ties), which keeps every simulation fully
 * deterministic. Events are 16-byte tagged records rather than
 * heap-allocated closures, so the scheduling hot path performs no
 * allocation beyond the heap vector's amortized growth — the tag
 * and payloads are interpreted by the Sink (see OnlineScheduler),
 * keeping the queue itself policy-free.
 */

#ifndef GAIA_SIM_EVENT_QUEUE_H
#define GAIA_SIM_EVENT_QUEUE_H

#include <cstdint>
#include <queue>
#include <vector>

#include "common/time.h"

namespace gaia {

/**
 * One scheduled occurrence: a dispatcher-defined tag plus two raw
 * payload fields (e.g. a job index and a segment index). The queue
 * never interprets any of them.
 */
struct SimEvent
{
    std::uint32_t kind = 0;
    std::uint32_t a = 0;
    std::int64_t b = 0;
};

/** Minimal deterministic event queue. */
class EventQueue
{
  public:
    /** Receiver of dispatched events. */
    struct Sink
    {
        virtual ~Sink() = default;
        /** Called with now() already set to the event's time. */
        virtual void onEvent(const SimEvent &event) = 0;
    };

    /** Schedule `event` at absolute time `when` (>= now()). */
    void schedule(Seconds when, SimEvent event);

    /**
     * Schedule with an explicit same-timestamp priority (lower runs
     * first; the plain overload uses priority 1). Job arrivals use
     * priority 0 so batch-fed and incrementally-fed simulations
     * order timestamp ties identically.
     */
    void schedule(Seconds when, int priority, SimEvent event);

    /**
     * Schedule hint for callers whose `when` values arrive in
     * non-decreasing order (batch job feeds): events land in a flat
     * FIFO lane instead of the heap, so a year-long trace does not
     * inflate the heap — and every pop's sift-down — with tens of
     * thousands of far-future arrivals. Out-of-order calls silently
     * fall back to the heap; dispatch order is identical either way
     * (global (time, priority, seq) order across both lanes).
     */
    void scheduleSequential(Seconds when, int priority,
                            SimEvent event);

    /**
     * Pop the earliest event and hand it to `sink`; false when
     * drained. The sink is passed per call rather than stored so
     * the queue (and anything embedding it) stays freely movable.
     */
    bool runNext(Sink &sink);

    /** Run until the queue is empty. */
    void runAll(Sink &sink);

    /**
     * Run every event with time <= `until` (events they spawn
     * included), then set now() to `until`. Enables incremental
     * (online) simulation.
     */
    void runUntil(Seconds until, Sink &sink);

    /** Timestamp of the earliest pending event; -1 when empty. */
    Seconds nextEventTime() const;

    /** Current simulation time (start of the last-run event). */
    Seconds now() const { return now_; }

    bool
    empty() const
    {
        return heap_.empty() && fifo_head_ == fifo_.size();
    }

    std::size_t
    pendingCount() const
    {
        return heap_.size() + (fifo_.size() - fifo_head_);
    }

    /** Pre-size the lanes for an expected event population. */
    void reserve(std::size_t events);

  private:
    /**
     * 32-byte queue record. `ord` packs (priority << 56) | seq so
     * the (time, priority, seq) dispatch order collapses into two
     * comparisons; seq is a global counter across both lanes, which
     * is what keeps their merge order well defined.
     */
    struct Entry
    {
        Seconds time;
        std::uint64_t ord;
        SimEvent event;
    };
    struct Later
    {
        bool operator()(const Entry &a, const Entry &b) const
        {
            if (a.time != b.time)
                return a.time > b.time;
            return a.ord > b.ord;
        }
    };
    /** priority_queue with a reservable backing vector. */
    struct Heap : std::priority_queue<Entry, std::vector<Entry>, Later>
    {
        void reserve(std::size_t entries) { c.reserve(entries); }
    };

    std::uint64_t packOrd(int priority);
    const Entry *peek() const;
    Entry pop();

    Heap heap_;
    /** Sorted lane: non-decreasing (time, ord), consumed in order. */
    std::vector<Entry> fifo_;
    std::size_t fifo_head_ = 0;
    std::uint64_t next_seq_ = 0;
    Seconds now_ = 0;
};

} // namespace gaia

#endif // GAIA_SIM_EVENT_QUEUE_H
