/**
 * @file
 * ISchedulerProtocol — the event protocol between a scheduling
 * engine and whoever drives its clock.
 *
 * The engine (OnlineScheduler) makes carbon-aware decisions; a
 * *driver* owns time and feeds it events. Two drivers exist:
 *
 *  - VirtualClockDriver (sim/driver.h): replays a pre-materialised
 *    JobTrace in virtual time — the batch simulator behind
 *    simulateChecked() and every figure sweep.
 *  - WallClockDriver (serve/wall_clock_driver.h): paces virtual
 *    time against the wall clock at an acceleration factor,
 *    releasing jobs as they stream in from the gaia_serve
 *    submission queue.
 *
 * The protocol is deliberately narrow (batsched-style): release a
 * job, advance the clock, note a source-state change, drain,
 * close the books. Everything else — placement, accounting,
 * degradation ladders — stays behind it, so the same engine code
 * serves reproduction sweeps and the live daemon, and the two
 * drivers can be held to byte-identical results (see the driver
 * parity tests: identical resultFingerprint() for the same
 * released stream, regardless of wall-clock pacing).
 *
 * Tie-breaking contract drivers rely on: events at equal virtual
 * timestamps dispatch in (priority, schedule order), and job
 * releases use the highest priority — so releasing a job before
 * advancing the clock *into* its submit second reproduces the
 * batch ordering exactly. A driver must therefore never advance
 * the clock past `submit - 1` of a job it has yet to release (the
 * wall-clock driver's release-horizon bound).
 *
 * Thread-safety: a protocol instance is single-threaded — exactly
 * one driver thread may call it. Cross-thread submission hand-off
 * happens upstream (the MPSC queue), never here.
 */

#ifndef GAIA_SIM_PROTOCOL_H
#define GAIA_SIM_PROTOCOL_H

#include "common/status.h"
#include "common/time.h"
#include "sim/results.h"
#include "workload/job.h"

namespace gaia {

/**
 * Observer of engine-side lifecycle events, for live monitoring.
 * Attached by the serving layer; the batch path leaves it unset,
 * in which case the engine emits no notification events at all
 * (keeping batch replays bit-identical to the pre-protocol core).
 */
class ProtocolListener
{
  public:
    virtual ~ProtocolListener() = default;

    /**
     * `id` finished its last successful segment at `at` (virtual
     * time). Fired through the event queue, so notifications are
     * delivered in non-decreasing `at` order, after every
     * same-instant scheduling action.
     */
    virtual void onJobEnd(Seconds at, JobId id) = 0;
};

/** Driver-facing surface of a scheduling engine. */
class ISchedulerProtocol
{
  public:
    virtual ~ISchedulerProtocol() = default;

    /**
     * A job was released (arrived) at `job.submit`. Errors — rather
     * than asserting — on a submit time already in the past or a
     * release after the books closed, since live feeds are
     * untrusted input.
     */
    virtual Status onJobRelease(const Job &job) = 0;

    /** Advance the clock: process every event up to and including
     *  time `t`. */
    virtual void onTick(Seconds t) = 0;

    /**
     * The carbon-information source's availability changed at `t`
     * (outage began or lifted). Purely informational: the engine
     * records it, and re-probes the source lazily at the next
     * planning decision, so calling or omitting this never alters
     * a schedule.
     */
    virtual void onSourceUpdate(Seconds t) = 0;

    /** Process all remaining events (run to completion). */
    virtual void onDrain() = 0;

    /**
     * Close the books and return the result. The engine must be
     * drained; may be called once.
     */
    virtual SimulationResult onSimulationEnd() = 0;

    /** Current virtual time. */
    virtual Seconds now() const = 0;

    /** Jobs released so far. */
    virtual std::size_t releasedJobs() const = 0;

    /**
     * Attach (or detach, with nullptr) the lifecycle observer.
     * Must be set before the first release; the engine only
     * schedules notification events for jobs released while a
     * listener is attached.
     */
    void setListener(ProtocolListener *listener)
    {
        listener_ = listener;
    }

    ProtocolListener *listener() const { return listener_; }

  protected:
    ProtocolListener *listener_ = nullptr;
};

} // namespace gaia

#endif // GAIA_SIM_PROTOCOL_H
