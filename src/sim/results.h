/**
 * @file
 * Simulation outputs: per-job outcomes and cluster-level aggregates.
 *
 * GAIA accounts exactly as the paper prescribes (§4.1): on-demand
 * and spot usage is billed pay-as-you-go, reserved capacity is paid
 * upfront for the whole horizon regardless of utilization, energy
 * and carbon are attributed by actual usage only (idle reserved
 * cores emit nothing), and work lost to spot evictions still costs
 * money and carbon.
 */

#ifndef GAIA_SIM_RESULTS_H
#define GAIA_SIM_RESULTS_H

#include <cstdint>
#include <string>
#include <vector>

#include "cloud/purchase.h"
#include "common/small_vector.h"
#include "common/time.h"
#include "workload/job.h"

namespace gaia {

/** One executed (or lost) slice of a job on a purchase option. */
struct PlacedSegment
{
    Seconds start = 0;
    Seconds end = 0;
    PurchaseOption option = PurchaseOption::OnDemand;
    /** True for spot work destroyed by an eviction. */
    bool lost = false;
    /** Concurrent instances during the slice; 1 for every
     *  fixed-width job, above 1 only for elastic plans. */
    int width = 1;

    Seconds duration() const { return end - start; }
};

/** Everything recorded about one job's execution. */
struct JobOutcome
{
    JobId id = 0;
    Seconds submit = 0;
    Seconds length = 0;
    int cpus = 1;

    /** Chronological placements, including lost spot slices. */
    /** Two segments stay inline: an uninterrupted run, or one
     *  lost spot slice plus the restart — so recording placements
     *  allocates only for suspend-resume schedules. */
    SmallVector<PlacedSegment, 2> segments;

    /** First instant any segment ran. */
    Seconds start = 0;
    /** Instant the final (successful) segment completed. */
    Seconds finish = 0;

    /** Attributed emissions, grams CO2eq (includes lost work). */
    double carbon_g = 0.0;
    /** Counterfactual emissions of starting at submit. */
    double carbon_nowait_g = 0.0;
    /** Pay-as-you-go dollars (on-demand + spot, incl. lost work). */
    double variable_cost = 0.0;
    /** Spot evictions suffered. */
    int evictions = 0;
    /** Core-seconds destroyed by evictions. */
    double lost_core_seconds = 0.0;
    /** Core-seconds of instance start/stop overhead attributed. */
    double overhead_core_seconds = 0.0;

    /** Completion time: finish − submit. */
    Seconds completion() const { return finish - submit; }
    /** Waiting (non-running) time: completion − useful run time.
     *  Negative for elastic jobs that finish faster than their
     *  single-instance length — a speedup, reported as-is. */
    Seconds waiting() const { return completion() - length; }
    /** Emissions saved versus running immediately. */
    double carbonSaved() const { return carbon_nowait_g - carbon_g; }
};

/** Cluster-level aggregates for one simulation run. */
struct SimulationResult
{
    std::string policy;
    std::string strategy;
    std::string region;
    std::string workload;

    std::vector<JobOutcome> outcomes;

    int reserved_cores = 0;
    Seconds horizon = 0;

    /** Dollars. */
    double reserved_upfront = 0.0;
    double on_demand_cost = 0.0;
    double spot_cost = 0.0;

    /** Emissions and energy (totals include the idle share). */
    double carbon_kg = 0.0;
    double carbon_nowait_kg = 0.0;
    double energy_kwh = 0.0;
    /** Share of the totals from idle-but-powered reserved cores. */
    double idle_carbon_kg = 0.0;
    double idle_energy_kwh = 0.0;

    /** Usage split, core-seconds. */
    double reserved_core_seconds = 0.0;
    double on_demand_core_seconds = 0.0;
    double spot_core_seconds = 0.0;
    double lost_core_seconds = 0.0;
    double overhead_core_seconds = 0.0;

    /** Reserved-pool utilization over the horizon, [0, 1]. */
    double reserved_utilization = 0.0;
    std::size_t eviction_count = 0;

    /** Total dollars: upfront reservation + variable usage. */
    double totalCost() const
    {
        return reserved_upfront + on_demand_cost + spot_cost;
    }

    /** Mean job waiting time, hours. */
    double meanWaitingHours() const;
    /** Mean job completion time, hours. */
    double meanCompletionHours() const;
    /** 95th-percentile waiting time, hours. */
    double p95WaitingHours() const;
    /** Total carbon saved versus immediate execution, kg. */
    double carbonSavedKg() const
    {
        return carbon_nowait_kg - carbon_kg;
    }
};

/**
 * Concurrent cores in use by `option` (or all options when
 * `any_option`), sampled every `step` seconds over [0, horizon) —
 * the data behind the paper's demand/allocation plots.
 */
std::vector<double>
allocationSeries(const SimulationResult &result, Seconds step,
                 bool any_option = true,
                 PurchaseOption option = PurchaseOption::OnDemand);

/**
 * Stable 64-bit digest of every field of `result`, including each
 * job outcome and placed segment (doubles hashed by bit pattern, so
 * even sub-printing-precision drift changes the digest). Two runs
 * are bit-identical iff their fingerprints match — the determinism
 * tests compare this across thread counts and repeated runs.
 */
std::uint64_t resultFingerprint(const SimulationResult &result);

} // namespace gaia

#endif // GAIA_SIM_RESULTS_H
