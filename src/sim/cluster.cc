#include "sim/cluster.h"

#include "common/logging.h"

namespace gaia {

std::string
strategyName(ResourceStrategy strategy)
{
    switch (strategy) {
      case ResourceStrategy::OnDemandOnly:
        return "OnDemand";
      case ResourceStrategy::HybridGreedy:
        return "Hybrid";
      case ResourceStrategy::ReservedFirst:
        return "RES-First";
      case ResourceStrategy::SpotFirst:
        return "Spot-First";
      case ResourceStrategy::SpotReserved:
        return "Spot-RES";
    }
    panic("unknown resource strategy");
}

Status
ClusterConfig::validate() const
{
    GAIA_REQUIRE(reserved_cores >= 0,
                 "negative reserved core count ", reserved_cores);
    GAIA_TRY(pricing.validate());
    GAIA_REQUIRE(energy.watts_per_core >= 0.0,
                 "negative per-core power ", energy.watts_per_core);
    GAIA_REQUIRE(spot_eviction_rate >= 0.0 &&
                     spot_eviction_rate <= 1.0,
                 "spot eviction rate out of [0,1]: ",
                 spot_eviction_rate);
    GAIA_REQUIRE(spot_max_length >= 0,
                 "negative spot length bound ", spot_max_length);
    GAIA_REQUIRE(startup_overhead >= 0,
                 "negative startup overhead ", startup_overhead);
    GAIA_REQUIRE(reserved_idle_power_fraction >= 0.0 &&
                     reserved_idle_power_fraction <= 1.0,
                 "idle power fraction out of [0,1]: ",
                 reserved_idle_power_fraction);
    GAIA_REQUIRE(reservation_horizon >= 0,
                 "negative reservation horizon ",
                 reservation_horizon);
    return Status::ok();
}

Status
validateClusterSetup(const ClusterConfig &cluster,
                     ResourceStrategy strategy)
{
    GAIA_TRY(cluster.validate());
    GAIA_REQUIRE(strategy != ResourceStrategy::OnDemandOnly ||
                     cluster.reserved_cores == 0,
                 "OnDemandOnly strategy with ",
                 cluster.reserved_cores,
                 " reserved cores; use HybridGreedy or ",
                 "ReservedFirst");
    return Status::ok();
}

Seconds
defaultReservationHorizon(const JobTrace &trace,
                          const QueueConfig &queues)
{
    // busyHorizon covers the last arrival plus one full job length;
    // a second max-length allowance covers the worst case of a spot
    // eviction at the end of an almost-finished run being restarted
    // from scratch.
    const Seconds max_length =
        trace.busyHorizon() - trace.lastArrival();
    const Seconds busy =
        trace.busyHorizon() + queues.maxWait() + max_length;
    const Seconds day_aligned =
        ((busy + kSecondsPerDay - 1) / kSecondsPerDay) *
        kSecondsPerDay;
    return std::max(day_aligned, kSecondsPerDay);
}

} // namespace gaia
