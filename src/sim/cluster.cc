#include "sim/cluster.h"

#include "common/logging.h"

namespace gaia {

std::string
strategyName(ResourceStrategy strategy)
{
    switch (strategy) {
      case ResourceStrategy::OnDemandOnly:
        return "OnDemand";
      case ResourceStrategy::HybridGreedy:
        return "Hybrid";
      case ResourceStrategy::ReservedFirst:
        return "RES-First";
      case ResourceStrategy::SpotFirst:
        return "Spot-First";
      case ResourceStrategy::SpotReserved:
        return "Spot-RES";
    }
    panic("unknown resource strategy");
}

void
ClusterConfig::validate() const
{
    if (reserved_cores < 0)
        fatal("negative reserved core count ", reserved_cores);
    pricing.validate();
    if (energy.watts_per_core < 0.0)
        fatal("negative per-core power ", energy.watts_per_core);
    if (spot_eviction_rate < 0.0 || spot_eviction_rate > 1.0)
        fatal("spot eviction rate out of [0,1]: ",
              spot_eviction_rate);
    if (spot_max_length < 0)
        fatal("negative spot length bound ", spot_max_length);
    if (startup_overhead < 0)
        fatal("negative startup overhead ", startup_overhead);
    if (reserved_idle_power_fraction < 0.0 ||
        reserved_idle_power_fraction > 1.0) {
        fatal("idle power fraction out of [0,1]: ",
              reserved_idle_power_fraction);
    }
    if (reservation_horizon < 0)
        fatal("negative reservation horizon ", reservation_horizon);
}

Seconds
defaultReservationHorizon(const JobTrace &trace,
                          const QueueConfig &queues)
{
    // busyHorizon covers the last arrival plus one full job length;
    // a second max-length allowance covers the worst case of a spot
    // eviction at the end of an almost-finished run being restarted
    // from scratch.
    const Seconds max_length =
        trace.busyHorizon() - trace.lastArrival();
    const Seconds busy =
        trace.busyHorizon() + queues.maxWait() + max_length;
    const Seconds day_aligned =
        ((busy + kSecondsPerDay - 1) / kSecondsPerDay) *
        kSecondsPerDay;
    return std::max(day_aligned, kSecondsPerDay);
}

} // namespace gaia
