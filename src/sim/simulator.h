/**
 * @file
 * The GAIA cluster simulator.
 *
 * Replays a job trace against a scheduling policy and a resource
 * strategy over a carbon-intensity trace, producing per-job and
 * cluster-level accounting. This is the C++ counterpart of the
 * paper's GAIA-Simulator: identical interfaces and accounting to the
 * AWS ParallelCluster deployment, minus instance spin-up/teardown
 * overheads (which the paper's normalized metrics neglect too).
 *
 * The one entry point is simulateChecked(): it validates the setup
 * and returns a Status for inconsistent input (missing
 * collaborators, a carbon trace that ends before the last job
 * arrives, an invalid cluster/strategy combination), then rides the
 * VirtualClockDriver (sim/driver.h) over the online engine.
 * Assemble the setup with SimulationSetup::Builder rather than
 * writing struct fields by hand — build() runs the same validation,
 * so errors surface where the setup is constructed, not where it is
 * run.
 *
 * simulate() — the old trusted-input wrapper that asserted instead
 * of returning — is deprecated and kept for one release as a shim;
 * see DESIGN.md, "Migrating off simulate()".
 */

#ifndef GAIA_SIM_SIMULATOR_H
#define GAIA_SIM_SIMULATOR_H

#include "core/cis.h"
#include "core/policy.h"
#include "core/queues.h"
#include "sim/cluster.h"
#include "sim/results.h"
#include "workload/job.h"

namespace gaia {

class FaultInjector;

/** All inputs of one simulation run. */
struct SimulationSetup
{
    const JobTrace *trace = nullptr;
    const SchedulingPolicy *policy = nullptr;
    const QueueConfig *queues = nullptr;
    const CarbonInfoSource *cis = nullptr;
    ClusterConfig cluster;
    ResourceStrategy strategy = ResourceStrategy::OnDemandOnly;
    /** Optional cluster-side fault injector; nullptr = no faults. */
    const FaultInjector *faults = nullptr;
    /**
     * Optional scenario-wide elastic profile applied to every job
     * that does not carry an enabled profile of its own; nullptr
     * (the default) leaves every job fixed-width. Traces are shared
     * (and cached) across cells, so the profile is applied per-job
     * at submit time, never onto the trace itself.
     */
    const ElasticProfile *elastic = nullptr;

    class Builder;
};

/**
 * Fluent assembly of a SimulationSetup. All referenced
 * collaborators must outlive the built setup's run. build()
 * validates the whole setup (the same checks simulateChecked()
 * runs), so a bad combination errors at construction:
 *
 *     GAIA_TRY_ASSIGN(const SimulationSetup setup,
 *                     SimulationSetup::Builder()
 *                         .trace(trace)
 *                         .policy(*policy)
 *                         .queues(queues)
 *                         .cis(cis)
 *                         .cluster(cluster)
 *                         .strategy(ResourceStrategy::SpotReserved)
 *                         .build());
 *     GAIA_TRY_ASSIGN(const SimulationResult result,
 *                     simulateChecked(setup));
 */
class SimulationSetup::Builder
{
  public:
    Builder &
    trace(const JobTrace &trace)
    {
        setup_.trace = &trace;
        return *this;
    }

    Builder &
    policy(const SchedulingPolicy &policy)
    {
        setup_.policy = &policy;
        return *this;
    }

    Builder &
    queues(const QueueConfig &queues)
    {
        setup_.queues = &queues;
        return *this;
    }

    Builder &
    cis(const CarbonInfoSource &cis)
    {
        setup_.cis = &cis;
        return *this;
    }

    Builder &
    cluster(const ClusterConfig &cluster)
    {
        setup_.cluster = cluster;
        return *this;
    }

    Builder &
    strategy(ResourceStrategy strategy)
    {
        setup_.strategy = strategy;
        return *this;
    }

    /** nullptr (the default) disables fault injection. */
    Builder &
    faults(const FaultInjector *faults)
    {
        setup_.faults = faults;
        return *this;
    }

    /** nullptr (the default) leaves every job fixed-width. */
    Builder &
    elastic(const ElasticProfile *elastic)
    {
        setup_.elastic = elastic;
        return *this;
    }

    /** Validate and return the setup, or the Status explaining
     *  what is wrong with it. */
    Result<SimulationSetup> build() const;

  private:
    SimulationSetup setup_;
};

/**
 * Full input validation of a setup: required collaborators present,
 * the carbon trace covers the arrivals, the cluster/strategy
 * combination is consistent, fault and elastic specs are valid.
 * Shared by SimulationSetup::Builder::build() and
 * simulateChecked(), so the two can never drift.
 */
Status validateSetup(const SimulationSetup &setup);

/**
 * Run one simulation; returns a Status (instead of dying) on an
 * inconsistent setup. Untrusted configuration comes through here.
 */
Result<SimulationResult>
simulateChecked(const SimulationSetup &setup);

/**
 * Trusted-input wrapper; asserts on setups simulateChecked() would
 * reject.
 *
 * @deprecated Call simulateChecked() and handle the Status — the
 * assert-on-bad-input contract hid setup mistakes until runtime in
 * whatever binary tripped them. Shim kept for one release; see
 * DESIGN.md, "Migrating off simulate()".
 */
[[deprecated("use simulateChecked() (see DESIGN.md)")]]
SimulationResult simulate(const SimulationSetup &setup);

/**
 * Convenience overload assembling the setup from parts.
 *
 * @deprecated Assemble with SimulationSetup::Builder and call
 * simulateChecked(); see DESIGN.md, "Migrating off simulate()".
 */
[[deprecated("use SimulationSetup::Builder + simulateChecked() "
             "(see DESIGN.md)")]]
SimulationResult
simulate(const JobTrace &trace, const SchedulingPolicy &policy,
         const QueueConfig &queues, const CarbonInfoSource &cis,
         const ClusterConfig &cluster = {},
         ResourceStrategy strategy = ResourceStrategy::OnDemandOnly);

} // namespace gaia

#endif // GAIA_SIM_SIMULATOR_H
