/**
 * @file
 * The GAIA cluster simulator.
 *
 * Replays a job trace against a scheduling policy and a resource
 * strategy over a carbon-intensity trace, producing per-job and
 * cluster-level accounting. This is the C++ counterpart of the
 * paper's GAIA-Simulator: identical interfaces and accounting to the
 * AWS ParallelCluster deployment, minus instance spin-up/teardown
 * overheads (which the paper's normalized metrics neglect too).
 */

#ifndef GAIA_SIM_SIMULATOR_H
#define GAIA_SIM_SIMULATOR_H

#include "core/cis.h"
#include "core/policy.h"
#include "core/queues.h"
#include "sim/cluster.h"
#include "sim/results.h"
#include "workload/job.h"

namespace gaia {

/** All inputs of one simulation run. */
struct SimulationSetup
{
    const JobTrace *trace = nullptr;
    const SchedulingPolicy *policy = nullptr;
    const QueueConfig *queues = nullptr;
    const CarbonInfoService *cis = nullptr;
    ClusterConfig cluster;
    ResourceStrategy strategy = ResourceStrategy::OnDemandOnly;
};

/** Run one simulation; fatal() on inconsistent setups. */
SimulationResult simulate(const SimulationSetup &setup);

/** Convenience overload assembling the setup from parts. */
SimulationResult
simulate(const JobTrace &trace, const SchedulingPolicy &policy,
         const QueueConfig &queues, const CarbonInfoService &cis,
         const ClusterConfig &cluster = {},
         ResourceStrategy strategy = ResourceStrategy::OnDemandOnly);

} // namespace gaia

#endif // GAIA_SIM_SIMULATOR_H
