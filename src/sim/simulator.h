/**
 * @file
 * The GAIA cluster simulator.
 *
 * Replays a job trace against a scheduling policy and a resource
 * strategy over a carbon-intensity trace, producing per-job and
 * cluster-level accounting. This is the C++ counterpart of the
 * paper's GAIA-Simulator: identical interfaces and accounting to the
 * AWS ParallelCluster deployment, minus instance spin-up/teardown
 * overheads (which the paper's normalized metrics neglect too).
 *
 * Two entry points share one implementation: simulateChecked()
 * validates the setup and returns a Status for inconsistent input
 * (missing collaborators, a carbon trace that ends before the last
 * job arrives, an invalid cluster/strategy combination), which is
 * what CLI/scenario code wants; simulate() is the thin trusted-input
 * wrapper that asserts instead, for callers that construct setups
 * programmatically.
 */

#ifndef GAIA_SIM_SIMULATOR_H
#define GAIA_SIM_SIMULATOR_H

#include "core/cis.h"
#include "core/policy.h"
#include "core/queues.h"
#include "sim/cluster.h"
#include "sim/results.h"
#include "workload/job.h"

namespace gaia {

class FaultInjector;

/** All inputs of one simulation run. */
struct SimulationSetup
{
    const JobTrace *trace = nullptr;
    const SchedulingPolicy *policy = nullptr;
    const QueueConfig *queues = nullptr;
    const CarbonInfoSource *cis = nullptr;
    ClusterConfig cluster;
    ResourceStrategy strategy = ResourceStrategy::OnDemandOnly;
    /** Optional cluster-side fault injector; nullptr = no faults. */
    const FaultInjector *faults = nullptr;
    /**
     * Optional scenario-wide elastic profile applied to every job
     * that does not carry an enabled profile of its own; nullptr
     * (the default) leaves every job fixed-width. Traces are shared
     * (and cached) across cells, so the profile is applied per-job
     * at submit time, never onto the trace itself.
     */
    const ElasticProfile *elastic = nullptr;
};

/**
 * Run one simulation; returns a Status (instead of dying) on an
 * inconsistent setup. Untrusted configuration comes through here.
 */
Result<SimulationResult>
simulateChecked(const SimulationSetup &setup);

/** Trusted-input wrapper; asserts on setups simulateChecked()
 *  would reject. */
SimulationResult simulate(const SimulationSetup &setup);

/** Convenience overload assembling the setup from parts. */
SimulationResult
simulate(const JobTrace &trace, const SchedulingPolicy &policy,
         const QueueConfig &queues, const CarbonInfoSource &cis,
         const ClusterConfig &cluster = {},
         ResourceStrategy strategy = ResourceStrategy::OnDemandOnly);

} // namespace gaia

#endif // GAIA_SIM_SIMULATOR_H
