#include "sim/driver.h"

namespace gaia {

Status
VirtualClockDriver::replay(const JobTrace &trace)
{
    for (const Job &job : trace.jobs())
        GAIA_TRY(protocol_.onJobRelease(job));
    protocol_.onDrain();
    return Status::ok();
}

} // namespace gaia
