#include "sim/event_queue.h"

#include <utility>

#include "common/logging.h"

namespace gaia {

void
EventQueue::schedule(Seconds when, Handler handler)
{
    schedule(when, 1, std::move(handler));
}

void
EventQueue::schedule(Seconds when, int priority, Handler handler)
{
    GAIA_ASSERT(when >= now_, "scheduling into the past: ", when,
                " < ", now_);
    GAIA_ASSERT(handler != nullptr, "null event handler");
    heap_.push(
        Event{when, priority, next_seq_++, std::move(handler)});
}

bool
EventQueue::runNext()
{
    if (heap_.empty())
        return false;
    // priority_queue::top() is const; the handler must be moved out
    // before pop, so copy the cheap fields and steal the closure.
    Event event = std::move(const_cast<Event &>(heap_.top()));
    heap_.pop();
    now_ = event.time;
    event.handler();
    return true;
}

void
EventQueue::runAll()
{
    while (runNext()) {
    }
}

void
EventQueue::runUntil(Seconds until)
{
    GAIA_ASSERT(until >= now_, "runUntil into the past: ", until,
                " < ", now_);
    while (!heap_.empty() && heap_.top().time <= until)
        runNext();
    now_ = until;
}

Seconds
EventQueue::nextEventTime() const
{
    return heap_.empty() ? -1 : heap_.top().time;
}

} // namespace gaia
