#include "sim/event_queue.h"

#include "common/logging.h"

namespace gaia {

std::uint64_t
EventQueue::packOrd(int priority)
{
    GAIA_ASSERT(priority >= 0 && priority < 256,
                "event priority out of [0, 256): ", priority);
    const std::uint64_t seq = next_seq_++;
    GAIA_ASSERT(seq < (std::uint64_t{1} << 56),
                "event sequence counter overflow");
    return (static_cast<std::uint64_t>(priority) << 56) | seq;
}

void
EventQueue::schedule(Seconds when, SimEvent event)
{
    schedule(when, 1, event);
}

void
EventQueue::schedule(Seconds when, int priority, SimEvent event)
{
    GAIA_ASSERT(when >= now_, "scheduling into the past: ", when,
                " < ", now_);
    heap_.push(Entry{when, packOrd(priority), event});
}

void
EventQueue::scheduleSequential(Seconds when, int priority,
                               SimEvent event)
{
    GAIA_ASSERT(when >= now_, "scheduling into the past: ", when,
                " < ", now_);
    const Entry entry{when, packOrd(priority), event};
    if (!fifo_.empty() &&
        (entry.time < fifo_.back().time ||
         (entry.time == fifo_.back().time &&
          entry.ord < fifo_.back().ord))) {
        // Out of order relative to the staged lane: the heap still
        // dispatches it at the right point.
        heap_.push(entry);
        return;
    }
    fifo_.push_back(entry);
}

/** Earliest pending entry across both lanes; nullptr when empty. */
const EventQueue::Entry *
EventQueue::peek() const
{
    const Entry *staged =
        fifo_head_ < fifo_.size() ? &fifo_[fifo_head_] : nullptr;
    if (heap_.empty())
        return staged;
    const Entry *heaped = &heap_.top();
    if (staged == nullptr)
        return heaped;
    if (staged->time != heaped->time)
        return staged->time < heaped->time ? staged : heaped;
    return staged->ord < heaped->ord ? staged : heaped;
}

EventQueue::Entry
EventQueue::pop()
{
    const Entry *next = peek();
    const Entry entry = *next;
    if (!heap_.empty() && next == &heap_.top()) {
        heap_.pop();
    } else {
        ++fifo_head_;
        if (fifo_head_ == fifo_.size()) {
            fifo_.clear();
            fifo_head_ = 0;
        }
    }
    return entry;
}

bool
EventQueue::runNext(Sink &sink)
{
    if (empty())
        return false;
    const Entry entry = pop();
    now_ = entry.time;
    sink.onEvent(entry.event);
    return true;
}

void
EventQueue::runAll(Sink &sink)
{
    while (runNext(sink)) {
    }
}

void
EventQueue::runUntil(Seconds until, Sink &sink)
{
    GAIA_ASSERT(until >= now_, "runUntil into the past: ", until,
                " < ", now_);
    for (const Entry *next = peek();
         next != nullptr && next->time <= until; next = peek()) {
        const Entry entry = pop();
        now_ = entry.time;
        sink.onEvent(entry.event);
    }
    now_ = until;
}

Seconds
EventQueue::nextEventTime() const
{
    const Entry *next = peek();
    return next == nullptr ? -1 : next->time;
}

void
EventQueue::reserve(std::size_t events)
{
    heap_.reserve(events);
    fifo_.reserve(events);
}

} // namespace gaia
