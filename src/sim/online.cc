#include "sim/online.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/obs.h"
#include "core/elastic.h"
#include "fault/injector.h"

namespace gaia {

namespace {

// Process-wide aggregates across every simulation; per-event state
// stays in plain members and flushes here once at finalize().
obs::Counter &c_events = obs::counter("sim.events_dispatched");
obs::Counter &c_jobs_completed = obs::counter("sim.jobs_completed");
obs::Counter &c_jobs_evicted = obs::counter("sim.jobs_evicted");
obs::Counter &c_evictions = obs::counter("sim.evictions");
obs::Counter &c_faults_injected = obs::counter("fault.injected");
obs::Counter &c_cis_retries = obs::counter("cis.retries");
obs::Counter &c_degraded = obs::counter("policy.degraded_slots");
obs::Counter &c_spot_instance_retries =
    obs::counter("fault.spot_instance_retries");
obs::Counter &c_degraded_instance_hours =
    obs::counter("policy.degraded_instance_hours");
obs::Counter &c_source_updates =
    obs::counter("serve.source_updates");

/**
 * Same-timestamp priority of EvJobEnd notifications. Arrivals run at
 * 0 and every scheduling action at the default 1, so 2 delivers the
 * listener callback after the instant's state changes have settled.
 */
constexpr int kNotifyPriority = 2;

/**
 * Post-eviction restarts abandon the (now stale) plan and re-run the
 * whole job contiguously; elastic jobs restart at full width, so the
 * restart covers their work in ceil(length / maxThroughput) seconds.
 */
Seconds
restartDuration(const Job &job)
{
    if (!job.elastic.enabled())
        return job.length;
    return static_cast<Seconds>(
        std::ceil(static_cast<double>(job.length) /
                  job.elastic.maxThroughput()));
}

int
restartWidth(const Job &job)
{
    return job.elastic.enabled() ? job.elastic.maxInstances() : 1;
}

} // namespace

OnlineScheduler::OnlineScheduler(const SchedulingPolicy &policy,
                                 const QueueConfig &queues,
                                 const CarbonInfoSource &cis,
                                 const ClusterConfig &cluster,
                                 ResourceStrategy strategy,
                                 std::string workload,
                                 const FaultInjector *faults)
    : policy_(policy),
      queues_(queues),
      cis_(cis),
      cluster_(cluster),
      strategy_(strategy),
      workload_(std::move(workload)),
      faults_(faults),
      pool_(cluster.reserved_cores),
      eviction_(cluster.spot_eviction_rate),
      rng_(cluster.seed)
{
    const Status setup = validateClusterSetup(cluster_, strategy_);
    GAIA_ASSERT(setup.isOk(),
                "invalid cluster setup passed to the constructor "
                "(use OnlineScheduler::create for untrusted "
                "configuration): ",
                setup.message());
    horizon_ = cluster_.reservation_horizon; // 0 = derive later
}

Result<OnlineScheduler>
OnlineScheduler::create(const SchedulingPolicy &policy,
                        const QueueConfig &queues,
                        const CarbonInfoSource &cis,
                        const ClusterConfig &cluster,
                        ResourceStrategy strategy,
                        std::string workload,
                        const FaultInjector *faults)
{
    GAIA_TRY(validateClusterSetup(cluster, strategy));
    if (faults != nullptr)
        GAIA_TRY(faults->spec().validate());
    return OnlineScheduler(policy, queues, cis, cluster, strategy,
                           std::move(workload), faults);
}

void
OnlineScheduler::setDefaultElasticProfile(
    const ElasticProfile &profile)
{
    const Status valid = profile.validate();
    GAIA_ASSERT(valid.isOk(), "invalid default elastic profile: ",
                valid.message());
    default_elastic_ = profile;
}

void
OnlineScheduler::reserveJobs(std::size_t count)
{
    states_.reserve(count);
    // Each job contributes its arrival plus (typically) one start
    // and one release event; 2x covers the common population
    // without the heap reallocating mid-run.
    events_.reserve(2 * count);
}

void
OnlineScheduler::onEvent(const SimEvent &event)
{
    ++events_dispatched_;
    const auto idx = static_cast<std::size_t>(event.a);
    switch (event.kind) {
      case EvArrival:
        onArrival(idx);
        return;
      case EvPlaceSegment:
        placeSegment(idx, static_cast<std::size_t>(event.b));
        return;
      case EvPlaceSpotSegment:
        placeSpotSegment(idx, static_cast<std::size_t>(event.b));
        return;
      case EvPlannedStart:
        onPlannedStart(idx);
        return;
      case EvRestartAfterEviction:
        restartAfterEviction(idx, events_.now());
        return;
      case EvPoolRelease:
        pool_.release(static_cast<int>(event.a), events_.now());
        drainPending();
        return;
      case EvJobEnd:
        // Notification only; a listener detached after the schedule
        // simply misses the callback.
        if (listener_ != nullptr)
            listener_->onJobEnd(events_.now(),
                                states_[idx].outcome.id);
        return;
    }
    panic("unknown event kind ", event.kind);
}

void
OnlineScheduler::notifyJobEnd(std::size_t idx, Seconds at)
{
    if (listener_ == nullptr)
        return;
    events_.schedule(at, kNotifyPriority,
                     SimEvent{EvJobEnd,
                              static_cast<std::uint32_t>(idx), 0});
}

void
OnlineScheduler::onSourceUpdate(Seconds t)
{
    GAIA_ASSERT(!finalized_, "onSourceUpdate() after finalize()");
    GAIA_ASSERT(t >= events_.now(),
                "source update at ", t, " is in the past (now ",
                events_.now(), ")");
    ++source_updates_;
}

bool
OnlineScheduler::usesReserved() const
{
    return strategy_ != ResourceStrategy::OnDemandOnly &&
           cluster_.reserved_cores > 0;
}

bool
OnlineScheduler::spotEnabled() const
{
    return (strategy_ == ResourceStrategy::SpotFirst ||
            strategy_ == ResourceStrategy::SpotReserved) &&
           cluster_.spot_max_length > 0;
}

Status
OnlineScheduler::submit(const Job &job)
{
    GAIA_ASSERT(!finalized_, "submit() after finalize()");
    GAIA_REQUIRE(job.submit >= events_.now(), "job ", job.id,
                 " submitted at ", job.submit,
                 " but simulation time is already ", events_.now());
    Job admitted = job;
    if (faults_ != nullptr) {
        if (faults_->straggler(job.id)) {
            // Straggler slowdown: the job really takes longer; the
            // books account the stretched length as useful work.
            admitted.length = faults_->stretched(admitted.length);
            ++faults_injected_;
        }
        if (faults_->delayedStart(job.id)) {
            // Delayed start: the scheduler sees the job late, but
            // the user submitted at the original instant, so the
            // delay counts as waiting time in the outcome.
            admitted.submit += faults_->startDelay();
            ++faults_injected_;
        }
    }
    if (default_elastic_.enabled() && !admitted.elastic.enabled())
        admitted.elastic = default_elastic_;
    const std::size_t idx = states_.size();
    GAIA_ASSERT(idx <= 0xffffffffu, "job index overflows the event "
                "payload");
    states_.emplace_back();
    states_[idx].job = admitted;
    states_[idx].outcome.id = job.id;
    states_[idx].outcome.submit = job.submit;
    states_[idx].outcome.length = admitted.length;
    states_[idx].outcome.cpus = job.cpus;
    // Priority 0: arrivals at a timestamp run before same-instant
    // releases/starts, so batch and incremental feeding agree. The
    // sequential lane keeps a batch-fed trace's arrivals (sorted by
    // submit time) out of the heap; a fault-delayed arrival that
    // lands out of order falls back to the heap transparently.
    events_.scheduleSequential(
        admitted.submit, /*priority=*/0,
        SimEvent{EvArrival, static_cast<std::uint32_t>(idx), 0});
    return Status::ok();
}

void
OnlineScheduler::advanceTo(Seconds t)
{
    GAIA_ASSERT(!finalized_, "advanceTo() after finalize()");
    events_.runUntil(t, *this);
}

void
OnlineScheduler::drain()
{
    GAIA_ASSERT(!finalized_, "drain() after finalize()");
    events_.runAll(*this);
}

void
OnlineScheduler::onArrival(std::size_t idx)
{
    JobState &state = states_[idx];
    const Job &job = state.job;

    if (!cis_.availableAt(events_.now())) {
        if (retryArrivalLater(idx))
            return;
        // Retry budget exhausted: degrade to the carbon-oblivious
        // NoWait plan rather than blocking the queue. Recovery is
        // automatic — the next arrival (or retry probe) that finds
        // the source available plans normally again. Elastic jobs
        // degrade to the elastic NoWait analogue (full width now),
        // keeping their work-conserving completion semantics.
        ++degraded_plans_;
        state.plan = policy_.elastic() && job.elastic.enabled()
                         ? elasticNoWaitPlan(job)
                         : SchedulePlan(job.submit, job.length);
        for (const RunSegment &seg : state.plan.segments())
            degraded_instance_seconds_ +=
                static_cast<std::uint64_t>(seg.duration()) *
                static_cast<std::uint64_t>(seg.width);
    } else {
        const QueueSpec &queue = queues_.queueForJob(job);
        PlanContext ctx;
        ctx.now = job.submit;
        ctx.cis = &cis_;
        ctx.queue = &queue;
        ctx.cache =
            planMemoizationEnabled() ? plan_cache_.get() : nullptr;
        {
            const obs::Span span("policy.plan");
            state.plan = policy_.plan(job, ctx);
        }

        // Plan contract checks (see SchedulingPolicy::plan). An
        // elastic policy planning an elastic job covers the job's
        // *work* at the planned widths; everyone else covers its
        // wall time exactly.
        if (policy_.elastic() && job.elastic.enabled()) {
            const ElasticProfile &profile = job.elastic;
            double work = 0.0;
            for (const RunSegment &seg : state.plan.segments())
                work += static_cast<double>(seg.duration()) *
                        profile.throughputAt(seg.width);
            GAIA_ASSERT(
                work + 1e-6 >= static_cast<double>(job.length) &&
                    work < static_cast<double>(job.length) +
                               2.0 * profile.maxThroughput() + 1e-6,
                "policy '", policy_.name(), "' planned ", work,
                " work units for a ", job.length, "s job");
            GAIA_ASSERT(state.plan.maxWidth() <=
                            profile.maxInstances(),
                        "plan width ", state.plan.maxWidth(),
                        " exceeds the job's maximum of ",
                        profile.maxInstances());
        } else {
            GAIA_ASSERT(state.plan.totalRunTime() == job.length,
                        "policy '", policy_.name(), "' planned ",
                        state.plan.totalRunTime(), "s for a ",
                        job.length, "s job");
        }
        GAIA_ASSERT(state.plan.plannedStart() >= job.submit,
                    "plan starts before submission");
        GAIA_ASSERT(state.plan.plannedStart() <=
                        job.submit + queue.max_wait,
                    "plan start violates the waiting bound W");
    }

    state.outcome.carbon_nowait_g = cis_.trace().gramsFor(
        job.submit, job.submit + job.length,
        cluster_.energy.kilowatts(job.cpus));

    state.spot_eligible =
        spotEnabled() && job.length <= cluster_.spot_max_length;

    dispatch(idx);
}

bool
OnlineScheduler::retryArrivalLater(std::size_t idx)
{
    JobState &state = states_[idx];
    // Knob defaults apply when a faulty source is wired up without
    // a cluster-side injector.
    const FaultSpec defaults;
    const FaultSpec &spec =
        faults_ != nullptr ? faults_->spec() : defaults;
    if (state.cis_attempts == 0)
        ++faults_injected_; // the outage counts once per job
    if (static_cast<int>(state.cis_attempts) >=
        spec.cis_max_retries)
        return false;
    // Bounded retry with exponential backoff: base, 2x, 4x, ...
    const Seconds backoff =
        spec.cis_retry_backoff << state.cis_attempts;
    ++state.cis_attempts;
    ++cis_retries_;
    // The job effectively re-arrives at the probe instant; mutating
    // its submit keeps the planning contract (ctx.now == submit)
    // intact, while the outcome keeps the user-visible submit time
    // so the stall counts as waiting.
    state.job.submit = events_.now() + backoff;
    events_.schedule(
        state.job.submit, /*priority=*/0,
        SimEvent{EvArrival, static_cast<std::uint32_t>(idx), 0});
    return true;
}

void
OnlineScheduler::dispatch(std::size_t idx)
{
    JobState &state = states_[idx];
    const Job &job = state.job;
    const Seconds at = events_.now();

    switch (strategy_) {
      case ResourceStrategy::OnDemandOnly:
      case ResourceStrategy::HybridGreedy:
        followPlan(idx, /*on_spot=*/false);
        return;

      case ResourceStrategy::SpotFirst:
        followPlan(idx, /*on_spot=*/state.spot_eligible);
        return;

      case ResourceStrategy::ReservedFirst:
      case ResourceStrategy::SpotReserved:
        if (strategy_ == ResourceStrategy::SpotReserved &&
            state.spot_eligible) {
            followPlan(idx, /*on_spot=*/true);
            return;
        }
        // Suspend-resume plans are not work-conserving: they follow
        // their segment schedule with greedy placement.
        if (state.plan.isSuspendResume()) {
            followPlan(idx, /*on_spot=*/false);
            return;
        }
        // Work-conserving: run immediately when reserved capacity
        // is free, even if the policy preferred to wait. (Plans
        // reaching here are single-segment; elastic ones need the
        // segment's full gang of cores.)
        if (pool_.canFit(job.cpus * state.plan.segment(0).width)) {
            startOnReserved(idx, at);
            return;
        }
        state.pending = true;
        pending_.emplace(state.plan.plannedStart(), idx);
        events_.schedule(
            state.plan.plannedStart(),
            SimEvent{EvPlannedStart,
                     static_cast<std::uint32_t>(idx), 0});
        return;
    }
    panic("unknown resource strategy");
}

void
OnlineScheduler::followPlan(std::size_t idx, bool on_spot)
{
    JobState &state = states_[idx];
    state.started = true;
    if (!on_spot && strategy_ == ResourceStrategy::OnDemandOnly) {
        // Pure on-demand placement touches no shared state (no
        // reserved pool, no evictions), so deferring each segment
        // through the event heap only reorders identical
        // recordSegment calls — record them directly instead. This
        // cuts a heap push/pop + dispatch per job on the sweep hot
        // path.
        for (std::size_t s = 0; s < state.plan.segmentCount(); ++s) {
            const RunSegment &seg = state.plan.segment(s);
            recordSegment(idx, seg.start, seg.end,
                          PurchaseOption::OnDemand, /*lost=*/false,
                          seg.width);
        }
        notifyJobEnd(
            idx,
            state.plan.segment(state.plan.segmentCount() - 1).end);
        return;
    }
    for (std::size_t s = 0; s < state.plan.segmentCount(); ++s) {
        const Seconds at = state.plan.segment(s).start;
        events_.schedule(
            at, SimEvent{on_spot ? EvPlaceSpotSegment
                                 : EvPlaceSegment,
                         static_cast<std::uint32_t>(idx),
                         static_cast<std::int64_t>(s)});
    }
}

void
OnlineScheduler::placeSegment(std::size_t idx, std::size_t seg_idx)
{
    JobState &state = states_[idx];
    if (state.aborted)
        return; // plan superseded by an eviction restart
    const RunSegment &seg = state.plan.segment(seg_idx);
    const int cores = state.job.cpus * seg.width;
    const Seconds at = events_.now();
    GAIA_ASSERT(at == seg.start, "segment event fired at ", at,
                " for a segment starting at ", seg.start);

    if (strategy_ != ResourceStrategy::OnDemandOnly &&
        pool_.canFit(cores)) {
        pool_.acquire(cores, at);
        recordSegment(idx, seg.start, seg.end,
                      PurchaseOption::Reserved, /*lost=*/false,
                      seg.width);
        events_.schedule(
            seg.end,
            SimEvent{EvPoolRelease,
                     static_cast<std::uint32_t>(cores), 0});
    } else {
        recordSegment(idx, seg.start, seg.end,
                      PurchaseOption::OnDemand, /*lost=*/false,
                      seg.width);
    }
    if (seg_idx + 1 == state.plan.segmentCount())
        notifyJobEnd(idx, seg.end);
}

void
OnlineScheduler::placeSpotSegment(std::size_t idx,
                                  std::size_t seg_idx)
{
    JobState &state = states_[idx];
    if (state.aborted)
        return;
    const RunSegment &seg = state.plan.segment(seg_idx);
    state.started = true;
    runSpotSlice(idx, seg.start, seg.end, seg.width,
                 seg_idx + 1 == state.plan.segmentCount());
}

void
OnlineScheduler::runSpotSlice(std::size_t idx, Seconds from,
                              Seconds to, int width,
                              bool final_slice)
{
    JobState &state = states_[idx];

    // The independent per-slice eviction draw is sampled before the
    // storm check so the RNG stream — and with it every faults-off
    // simulation — is bit-identical whether or not an injector is
    // wired up.
    const Seconds offset =
        eviction_.sampleEvictionOffset(rng_, to - from);
    Seconds evict_at = offset < 0 ? -1 : from + offset;
    bool storm = false;
    if (faults_ != nullptr && faults_->storms()) {
        const Seconds strike = faults_->firstStormIn(from, to);
        if (strike >= 0 && (evict_at < 0 || strike < evict_at)) {
            // Correlated mass revocation: every spot slice crossing
            // the strike instant is evicted together.
            evict_at = strike;
            storm = true;
        }
    }
    if (evict_at < 0) {
        recordSegment(idx, from, to, PurchaseOption::Spot,
                      /*lost=*/false, width);
        if (final_slice)
            notifyJobEnd(idx, to);
        return;
    }

    // Evicted: this slice (and any previously completed slices) is
    // wasted; the paper assumes all progress is lost. A width-w
    // gang loses all w instances' work together.
    if (storm)
        ++faults_injected_;
    if (evict_at > from) {
        recordSegment(idx, from, evict_at, PurchaseOption::Spot,
                      /*lost=*/true, width);
    }
    for (PlacedSegment &done : state.outcome.segments)
        done.lost = true;
    state.outcome.evictions += 1;
    state.aborted = true;
    events_.schedule(evict_at,
                     SimEvent{EvRestartAfterEviction,
                              static_cast<std::uint32_t>(idx), 0});
}

void
OnlineScheduler::restartAfterEviction(std::size_t idx, Seconds at)
{
    JobState &state = states_[idx];
    const Job &job = state.job;
    // Under the storm model a bounded number of restarts re-attempt
    // spot first — that is what makes back-to-back revocations of
    // the same job possible — before falling through to the
    // baseline ladder below. Gated on storms() so the faults-off
    // path is untouched.
    const Seconds duration = restartDuration(job);
    const int width = restartWidth(job);
    if (faults_ != nullptr && faults_->storms() &&
        state.spot_eligible && spotEnabled() &&
        static_cast<int>(state.spot_retries) <
            faults_->spec().storm_spot_retries) {
        ++state.spot_retries;
        // Every instance of the gang re-acquires spot capacity
        // separately, so instance-level retries scale with width.
        spot_instance_retries_ +=
            static_cast<std::uint64_t>(width);
        // A restart re-runs the whole job, so surviving it settles
        // the job.
        runSpotSlice(idx, at, at + duration, width,
                     /*final_slice=*/true);
        return;
    }
    // Restart the full job; prefer a free reserved core, matching
    // the paper ("on either on-demand or reserved instances based
    // on availability"). The restart never returns to spot.
    const int cores = job.cpus * width;
    if (usesReserved() && pool_.canFit(cores)) {
        pool_.acquire(cores, at);
        recordSegment(idx, at, at + duration,
                      PurchaseOption::Reserved, /*lost=*/false,
                      width);
        events_.schedule(
            at + duration,
            SimEvent{EvPoolRelease,
                     static_cast<std::uint32_t>(cores), 0});
    } else {
        recordSegment(idx, at, at + duration,
                      PurchaseOption::OnDemand, /*lost=*/false,
                      width);
    }
    notifyJobEnd(idx, at + duration);
}

void
OnlineScheduler::startOnReserved(std::size_t idx, Seconds at)
{
    JobState &state = states_[idx];
    const Job &job = state.job;
    // Only single-segment plans take the work-conserving path; the
    // run keeps the planned duration and width but starts at `at`.
    GAIA_ASSERT(!state.plan.isSuspendResume(),
                "work-conserving start of a suspend-resume plan");
    const int width = state.plan.segment(0).width;
    const Seconds duration = state.plan.totalRunTime();
    const int cores = job.cpus * width;
    state.started = true;
    state.pending = false;
    pool_.acquire(cores, at);
    recordSegment(idx, at, at + duration,
                  PurchaseOption::Reserved, /*lost=*/false, width);
    events_.schedule(
        at + duration,
        SimEvent{EvPoolRelease,
                 static_cast<std::uint32_t>(cores), 0});
    notifyJobEnd(idx, at + duration);
}

void
OnlineScheduler::recordSegment(std::size_t idx, Seconds from,
                               Seconds to, PurchaseOption option,
                               bool lost, int width)
{
    GAIA_ASSERT(to > from, "empty placement [", from, ", ", to, ")");
    JobState &state = states_[idx];
    state.outcome.segments.push_back({from, to, option, lost,
                                      width});
}

void
OnlineScheduler::onPlannedStart(std::size_t idx)
{
    JobState &state = states_[idx];
    if (!state.pending)
        return; // already started from a reserved release
    state.pending = false;
    // Remove from the pending index.
    const Seconds key = state.plan.plannedStart();
    for (auto it = pending_.lower_bound(key);
         it != pending_.end() && it->first == key; ++it) {
        if (it->second == idx) {
            pending_.erase(it);
            break;
        }
    }
    // Planned start reached without reserved capacity: on-demand,
    // at the plan's duration and width (single-segment plans only).
    state.started = true;
    recordSegment(idx, events_.now(),
                  events_.now() + state.plan.totalRunTime(),
                  PurchaseOption::OnDemand, /*lost=*/false,
                  state.plan.segment(0).width);
    notifyJobEnd(idx, events_.now() + state.plan.totalRunTime());
}

void
OnlineScheduler::drainPending()
{
    // Work-conserving scan in planned-start order; first-fit keeps
    // small jobs from starving behind a wide one.
    const Seconds at = events_.now();
    for (auto it = pending_.begin(); it != pending_.end();) {
        JobState &state = states_[it->second];
        GAIA_ASSERT(state.pending, "stale pending-queue entry");
        if (pool_.canFit(state.job.cpus *
                         state.plan.segment(0).width)) {
            const std::size_t idx = it->second;
            it = pending_.erase(it);
            startOnReserved(idx, at);
        } else {
            ++it;
        }
    }
}

void
OnlineScheduler::finalizeInto(SimulationResult &result)
{
    result.outcomes.reserve(states_.size());
    for (JobState &state : states_) {
        JobOutcome &o = state.outcome;
        GAIA_ASSERT(!o.segments.empty(), "job ", o.id,
                    " never executed");
        if (o.segments.size() > 1) {
            std::sort(
                o.segments.begin(), o.segments.end(),
                [](const PlacedSegment &a, const PlacedSegment &b) {
                    return a.start < b.start;
                });
        }

        const ElasticProfile &profile = state.job.elastic;
        const bool elastic_job = profile.enabled();
        Seconds useful = 0;
        double useful_work = 0.0;
        o.start = o.segments.front().start;
        o.finish = 0;
        for (const PlacedSegment &seg : o.segments) {
            // Every per-instance quantity scales with the gang
            // width (1 for fixed-width jobs, so their books are
            // bit-identical to before the field existed).
            const int cores = o.cpus * seg.width;
            const double core_seconds =
                static_cast<double>(seg.duration()) * cores;
            const double grams = cis_.trace().gramsFor(
                seg.start, seg.end,
                cluster_.energy.kilowatts(cores));
            o.carbon_g += grams;
            result.energy_kwh +=
                cluster_.energy.kilowattHours(core_seconds);

            // Instance lifecycle overhead: each non-reserved
            // segment is a fresh cloud acquisition whose spin-up
            // time is billed and emits carbon without doing work.
            double overhead_core_seconds = 0.0;
            if (seg.option != PurchaseOption::Reserved &&
                cluster_.startup_overhead > 0) {
                const Seconds ov = cluster_.startup_overhead;
                overhead_core_seconds =
                    static_cast<double>(ov) * cores;
                const Seconds ov_from =
                    std::max<Seconds>(seg.start - ov, 0);
                double ov_grams = cis_.trace().gramsFor(
                    ov_from, seg.start,
                    cluster_.energy.kilowatts(cores));
                // Clip at t=0: charge the clipped part at the
                // first slot's intensity.
                const Seconds clipped = ov - (seg.start - ov_from);
                if (clipped > 0) {
                    ov_grams += cis_.trace().at(0) *
                                cluster_.energy.kilowatts(cores) *
                                static_cast<double>(clipped) /
                                static_cast<double>(kSecondsPerHour);
                }
                o.carbon_g += ov_grams;
                o.overhead_core_seconds += overhead_core_seconds;
                result.overhead_core_seconds +=
                    overhead_core_seconds;
                result.energy_kwh += cluster_.energy.kilowattHours(
                    overhead_core_seconds);
            }

            switch (seg.option) {
              case PurchaseOption::Reserved:
                result.reserved_core_seconds += core_seconds;
                break;
              case PurchaseOption::OnDemand:
                result.on_demand_core_seconds +=
                    core_seconds + overhead_core_seconds;
                o.variable_cost += cluster_.pricing.usageCost(
                    PurchaseOption::OnDemand,
                    core_seconds + overhead_core_seconds);
                break;
              case PurchaseOption::Spot:
                result.spot_core_seconds +=
                    core_seconds + overhead_core_seconds;
                o.variable_cost += cluster_.pricing.usageCost(
                    PurchaseOption::Spot,
                    core_seconds + overhead_core_seconds);
                break;
            }
            if (seg.lost) {
                o.lost_core_seconds += core_seconds;
            } else {
                useful += seg.duration();
                useful_work +=
                    static_cast<double>(seg.duration()) *
                    (elastic_job ? profile.throughputAt(seg.width)
                                 : 1.0);
                o.finish = std::max(o.finish, seg.end);
            }
        }
        if (elastic_job) {
            // Elastic plans deliver work in whole-second chunks per
            // instance, so up to one second of over-delivery per
            // marginal instance plus the base chunk can accrue —
            // bounded by 2 x maxThroughput seconds of work.
            GAIA_ASSERT(useful_work + 1e-6 >=
                                static_cast<double>(o.length) &&
                            useful_work <
                                static_cast<double>(o.length) +
                                    2.0 * profile.maxThroughput() +
                                    1e-6,
                        "job ", o.id, " delivered ", useful_work,
                        " work-seconds, expected about ", o.length);
        } else {
            GAIA_ASSERT(useful == o.length, "job ", o.id, " ran ",
                        useful, "s of useful work, expected ",
                        o.length);
        }
        if (o.finish > horizon_) {
            // Impossible under the derived horizon (it covers every
            // schedule the queue limits admit); a user-supplied
            // horizon can legitimately be shorter, so the books
            // stay correct but the overrun is surfaced.
            GAIA_ASSERT(cluster_.reservation_horizon > 0,
                        "job ", o.id,
                        " finished past the derived horizon");
            if (!horizon_overrun_warned_) {
                warn("schedule extends past the configured "
                     "reservation horizon (job ", o.id,
                     " finishes at ", o.finish, " > ", horizon_,
                     "); reserved upfront cost still covers only "
                     "the configured horizon");
                horizon_overrun_warned_ = true;
            }
        }

        result.carbon_kg += o.carbon_g / 1000.0;
        result.carbon_nowait_kg += o.carbon_nowait_g / 1000.0;
        result.lost_core_seconds += o.lost_core_seconds;
        result.eviction_count +=
            static_cast<std::size_t>(o.evictions);
        result.outcomes.push_back(std::move(o));
    }

    // Split the variable cost by option from the usage totals so the
    // per-job and cluster books agree by construction.
    result.on_demand_cost = cluster_.pricing.usageCost(
        PurchaseOption::OnDemand, result.on_demand_core_seconds);
    result.spot_cost = cluster_.pricing.usageCost(
        PurchaseOption::Spot, result.spot_core_seconds);

    // Idle-reserved power draw (0 under the paper's assumption):
    // integrate CI over the idle share of the pool slot by slot.
    if (cluster_.reserved_cores > 0 &&
        cluster_.reserved_idle_power_fraction > 0.0) {
        const auto slots = static_cast<std::size_t>(
            (horizon_ + kSecondsPerHour - 1) / kSecondsPerHour);
        std::vector<double> busy(slots, 0.0); // core-seconds/slot
        for (const JobOutcome &o : result.outcomes) {
            for (const PlacedSegment &seg : o.segments) {
                if (seg.option != PurchaseOption::Reserved)
                    continue;
                Seconds cursor = seg.start;
                while (cursor < seg.end) {
                    const auto slot = static_cast<std::size_t>(
                        cursor / kSecondsPerHour);
                    const Seconds slot_end =
                        static_cast<Seconds>(slot + 1) *
                        kSecondsPerHour;
                    const Seconds end =
                        std::min(slot_end, seg.end);
                    busy[slot] +=
                        static_cast<double>(end - cursor) *
                        o.cpus * seg.width;
                    cursor = end;
                }
            }
        }
        const double idle_kw_per_core =
            cluster_.energy.kilowatts(1) *
            cluster_.reserved_idle_power_fraction;
        for (std::size_t slot = 0; slot < slots; ++slot) {
            const Seconds slot_start_t =
                static_cast<Seconds>(slot) * kSecondsPerHour;
            const Seconds slot_len = std::min<Seconds>(
                kSecondsPerHour, horizon_ - slot_start_t);
            const double capacity =
                static_cast<double>(cluster_.reserved_cores) *
                static_cast<double>(slot_len);
            const double idle_core_seconds =
                std::max(0.0, capacity - busy[slot]);
            const double kwh =
                idle_kw_per_core * idle_core_seconds /
                static_cast<double>(kSecondsPerHour);
            result.idle_energy_kwh += kwh;
            result.idle_carbon_kg +=
                kwh *
                cis_.trace().atSlot(
                    static_cast<SlotIndex>(slot)) /
                1000.0;
        }
        result.energy_kwh += result.idle_energy_kwh;
        result.carbon_kg += result.idle_carbon_kg;
    }

    result.reserved_cores = cluster_.reserved_cores;
    result.horizon = horizon_;
    result.reserved_upfront = cluster_.pricing.reservedUpfront(
        cluster_.reserved_cores, horizon_);
    if (cluster_.reserved_cores > 0 && horizon_ > 0) {
        result.reserved_utilization =
            result.reserved_core_seconds /
            (static_cast<double>(cluster_.reserved_cores) *
             static_cast<double>(horizon_));
    }
}

SimulationResult
OnlineScheduler::finalize()
{
    GAIA_ASSERT(!finalized_, "finalize() called twice");
    GAIA_ASSERT(events_.empty(),
                "finalize() with events still pending; call "
                "drain() first");
    GAIA_ASSERT(pending_.empty(), "jobs left pending after drain");
    GAIA_ASSERT(pool_.inUse() == 0,
                "reserved cores leaked: ", pool_.inUse());
    finalized_ = true;

    if (horizon_ == 0) {
        // Online mode without a contracted horizon: cover the
        // observed schedule, rounded up to whole days.
        Seconds last_finish = 0;
        for (const JobState &state : states_) {
            for (const PlacedSegment &seg :
                 state.outcome.segments)
                last_finish = std::max(last_finish, seg.end);
        }
        horizon_ = std::max<Seconds>(
            ((last_finish + kSecondsPerDay - 1) / kSecondsPerDay) *
                kSecondsPerDay,
            kSecondsPerDay);
        // Mark as explicit so the per-job horizon check treats the
        // derived value as authoritative-but-soft.
        cluster_.reservation_horizon = horizon_;
    }

    SimulationResult result;
    result.policy = policy_.name();
    result.strategy = strategyName(strategy_);
    result.region = cis_.trace().region();
    result.workload = workload_;
    finalizeInto(result);

    // Flush this simulation's totals into the process-wide metrics.
    c_events.add(events_dispatched_);
    c_jobs_completed.add(result.outcomes.size());
    c_evictions.add(result.eviction_count);
    if (faults_injected_ > 0)
        c_faults_injected.add(faults_injected_);
    if (cis_retries_ > 0)
        c_cis_retries.add(cis_retries_);
    if (degraded_plans_ > 0)
        c_degraded.add(degraded_plans_);
    if (spot_instance_retries_ > 0)
        c_spot_instance_retries.add(spot_instance_retries_);
    if (source_updates_ > 0)
        c_source_updates.add(source_updates_);
    if (degraded_instance_seconds_ > 0) {
        c_degraded_instance_hours.add(
            (degraded_instance_seconds_ + kSecondsPerHour - 1) /
            kSecondsPerHour);
    }
    std::uint64_t evicted_jobs = 0;
    for (const JobOutcome &o : result.outcomes)
        if (o.evictions > 0)
            ++evicted_jobs;
    if (evicted_jobs > 0)
        c_jobs_evicted.add(evicted_jobs);

    return result;
}

} // namespace gaia
