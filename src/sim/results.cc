#include "sim/results.h"

#include <algorithm>

#include "common/logging.h"
#include "common/stats.h"

namespace gaia {

double
SimulationResult::meanWaitingHours() const
{
    if (outcomes.empty())
        return 0.0;
    double total = 0.0;
    for (const JobOutcome &o : outcomes)
        total += toHours(o.waiting());
    return total / static_cast<double>(outcomes.size());
}

double
SimulationResult::meanCompletionHours() const
{
    if (outcomes.empty())
        return 0.0;
    double total = 0.0;
    for (const JobOutcome &o : outcomes)
        total += toHours(o.completion());
    return total / static_cast<double>(outcomes.size());
}

double
SimulationResult::p95WaitingHours() const
{
    if (outcomes.empty())
        return 0.0;
    std::vector<double> waits;
    waits.reserve(outcomes.size());
    for (const JobOutcome &o : outcomes)
        waits.push_back(toHours(o.waiting()));
    return percentile(std::move(waits), 95.0);
}

std::vector<double>
allocationSeries(const SimulationResult &result, Seconds step,
                 bool any_option, PurchaseOption option)
{
    GAIA_ASSERT(step > 0, "non-positive allocation step");
    Seconds horizon = result.horizon;
    for (const JobOutcome &o : result.outcomes)
        horizon = std::max(horizon, o.finish);
    if (horizon <= 0)
        return {};

    const auto buckets =
        static_cast<std::size_t>((horizon + step - 1) / step);
    std::vector<double> series(buckets, 0.0);
    for (const JobOutcome &o : result.outcomes) {
        for (const PlacedSegment &seg : o.segments) {
            if (!any_option && seg.option != option)
                continue;
            Seconds cursor = seg.start;
            while (cursor < seg.end) {
                const auto bucket =
                    static_cast<std::size_t>(cursor / step);
                const Seconds bucket_end =
                    static_cast<Seconds>(bucket + 1) * step;
                const Seconds seg_end =
                    std::min(bucket_end, seg.end);
                series[bucket] +=
                    static_cast<double>(seg_end - cursor) * o.cpus;
                cursor = seg_end;
            }
        }
    }
    for (double &v : series)
        v /= static_cast<double>(step);
    return series;
}

} // namespace gaia
