#include "sim/results.h"

#include <algorithm>
#include <cstring>
#include <type_traits>

#include "common/logging.h"
#include "common/stats.h"

namespace gaia {

namespace {

/** FNV-1a over arbitrary typed values (doubles by bit pattern). */
class Digest
{
  public:
    template <typename T>
    void mix(T value)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        unsigned char bytes[sizeof(T)];
        std::memcpy(bytes, &value, sizeof(T));
        for (unsigned char byte : bytes) {
            hash_ ^= byte;
            hash_ *= 0x100000001b3ULL;
        }
    }

    void mix(const std::string &value)
    {
        mix<std::uint64_t>(value.size());
        for (char c : value)
            mix<unsigned char>(static_cast<unsigned char>(c));
    }

    std::uint64_t value() const { return hash_; }

  private:
    std::uint64_t hash_ = 0xcbf29ce484222325ULL;
};

} // namespace

double
SimulationResult::meanWaitingHours() const
{
    if (outcomes.empty())
        return 0.0;
    double total = 0.0;
    for (const JobOutcome &o : outcomes)
        total += toHours(o.waiting());
    return total / static_cast<double>(outcomes.size());
}

double
SimulationResult::meanCompletionHours() const
{
    if (outcomes.empty())
        return 0.0;
    double total = 0.0;
    for (const JobOutcome &o : outcomes)
        total += toHours(o.completion());
    return total / static_cast<double>(outcomes.size());
}

double
SimulationResult::p95WaitingHours() const
{
    if (outcomes.empty())
        return 0.0;
    std::vector<double> waits;
    waits.reserve(outcomes.size());
    for (const JobOutcome &o : outcomes)
        waits.push_back(toHours(o.waiting()));
    return percentile(std::move(waits), 95.0);
}

std::uint64_t
resultFingerprint(const SimulationResult &result)
{
    Digest digest;
    digest.mix(result.policy);
    digest.mix(result.strategy);
    digest.mix(result.region);
    digest.mix(result.workload);
    digest.mix(result.reserved_cores);
    digest.mix(result.horizon);
    digest.mix(result.reserved_upfront);
    digest.mix(result.on_demand_cost);
    digest.mix(result.spot_cost);
    digest.mix(result.carbon_kg);
    digest.mix(result.carbon_nowait_kg);
    digest.mix(result.energy_kwh);
    digest.mix(result.idle_carbon_kg);
    digest.mix(result.idle_energy_kwh);
    digest.mix(result.reserved_core_seconds);
    digest.mix(result.on_demand_core_seconds);
    digest.mix(result.spot_core_seconds);
    digest.mix(result.lost_core_seconds);
    digest.mix(result.overhead_core_seconds);
    digest.mix(result.reserved_utilization);
    digest.mix<std::uint64_t>(result.eviction_count);
    digest.mix<std::uint64_t>(result.outcomes.size());
    for (const JobOutcome &o : result.outcomes) {
        digest.mix(o.id);
        digest.mix(o.submit);
        digest.mix(o.length);
        digest.mix(o.cpus);
        digest.mix(o.start);
        digest.mix(o.finish);
        digest.mix(o.carbon_g);
        digest.mix(o.carbon_nowait_g);
        digest.mix(o.variable_cost);
        digest.mix(o.evictions);
        digest.mix(o.lost_core_seconds);
        digest.mix(o.overhead_core_seconds);
        digest.mix<std::uint64_t>(o.segments.size());
        for (const PlacedSegment &seg : o.segments) {
            digest.mix(seg.start);
            digest.mix(seg.end);
            digest.mix(static_cast<int>(seg.option));
            digest.mix(seg.lost);
            // Mixed only when above 1 so every fixed-width
            // fingerprint (all pinned golden CSVs) is unchanged by
            // the field's introduction.
            if (seg.width != 1)
                digest.mix(seg.width);
        }
    }
    return digest.value();
}

std::vector<double>
allocationSeries(const SimulationResult &result, Seconds step,
                 bool any_option, PurchaseOption option)
{
    GAIA_ASSERT(step > 0, "non-positive allocation step");
    Seconds horizon = result.horizon;
    for (const JobOutcome &o : result.outcomes)
        horizon = std::max(horizon, o.finish);
    if (horizon <= 0)
        return {};

    const auto buckets =
        static_cast<std::size_t>((horizon + step - 1) / step);
    std::vector<double> series(buckets, 0.0);
    for (const JobOutcome &o : result.outcomes) {
        for (const PlacedSegment &seg : o.segments) {
            if (!any_option && seg.option != option)
                continue;
            Seconds cursor = seg.start;
            while (cursor < seg.end) {
                const auto bucket =
                    static_cast<std::size_t>(cursor / step);
                const Seconds bucket_end =
                    static_cast<Seconds>(bucket + 1) * step;
                const Seconds seg_end =
                    std::min(bucket_end, seg.end);
                series[bucket] +=
                    static_cast<double>(seg_end - cursor) * o.cpus *
                    seg.width;
                cursor = seg_end;
            }
        }
    }
    for (double &v : series)
        v /= static_cast<double>(step);
    return series;
}

} // namespace gaia
