#include "sim/simulator.h"

#include <utility>

#include "common/logging.h"
#include "fault/injector.h"
#include "sim/online.h"

namespace gaia {

Result<SimulationResult>
simulateChecked(const SimulationSetup &setup)
{
    GAIA_REQUIRE(setup.trace != nullptr,
                 "simulation setup has no job trace");
    GAIA_REQUIRE(setup.policy != nullptr,
                 "simulation setup has no policy");
    GAIA_REQUIRE(setup.queues != nullptr,
                 "simulation setup has no queue configuration");
    GAIA_REQUIRE(setup.cis != nullptr,
                 "simulation setup has no carbon source");
    if (setup.trace->jobCount() > 0) {
        // The carbon trace clamps out-of-range queries, so a
        // schedule running past its end would silently account the
        // last slot's intensity — reject horizons that cannot even
        // cover the arrivals.
        GAIA_REQUIRE(
            setup.cis->trace().duration() >
                setup.trace->lastArrival(),
            "carbon trace ends at ", setup.cis->trace().duration(),
            "s but the last job arrives at ",
            setup.trace->lastArrival(),
            "s; the job and carbon horizons do not match");
    }

    // Batch mode: resolve the reservation horizon up front (it only
    // depends on the trace and queue limits, so every policy
    // compared on one scenario pays the same upfront cost), feed
    // every job to the online engine, and run to completion.
    ClusterConfig cluster = setup.cluster;
    const bool derived = cluster.reservation_horizon == 0;
    if (derived) {
        cluster.reservation_horizon =
            defaultReservationHorizon(*setup.trace, *setup.queues);
    }

    GAIA_TRY_ASSIGN(
        OnlineScheduler scheduler,
        OnlineScheduler::create(*setup.policy, *setup.queues,
                                *setup.cis, cluster, setup.strategy,
                                setup.trace->name(), setup.faults));
    scheduler.reserveJobs(setup.trace->jobCount());
    if (setup.elastic != nullptr) {
        GAIA_TRY(setup.elastic->validate());
        scheduler.setDefaultElasticProfile(*setup.elastic);
    }
    for (const Job &job : setup.trace->jobs()) {
        // A JobTrace is sorted by submit time, so feeding it in
        // order can never submit into the past.
        GAIA_TRY(scheduler.submit(job));
    }
    scheduler.drain();
    SimulationResult result = scheduler.finalize();

    if (derived && setup.faults == nullptr) {
        // The derived horizon is a guarantee, not a user choice;
        // finishing past it would be an engine bug, which the
        // OnlineScheduler already treats as soft for explicit
        // horizons — re-assert strictly here. Faulted runs are
        // exempt: stretched, delayed, and storm-restarted jobs can
        // legitimately overrun a horizon derived from the nominal
        // trace.
        for (const JobOutcome &o : result.outcomes) {
            GAIA_ASSERT(o.finish <= result.horizon, "job ", o.id,
                        " finished past the derived horizon");
        }
    }
    return result;
}

SimulationResult
simulate(const SimulationSetup &setup)
{
    Result<SimulationResult> result = simulateChecked(setup);
    GAIA_ASSERT(result.isOk(),
                "simulate() on an invalid setup (use "
                "simulateChecked for untrusted input): ",
                result.status().message());
    return std::move(result).value();
}

SimulationResult
simulate(const JobTrace &trace, const SchedulingPolicy &policy,
         const QueueConfig &queues, const CarbonInfoSource &cis,
         const ClusterConfig &cluster, ResourceStrategy strategy)
{
    SimulationSetup setup;
    setup.trace = &trace;
    setup.policy = &policy;
    setup.queues = &queues;
    setup.cis = &cis;
    setup.cluster = cluster;
    setup.strategy = strategy;
    return simulate(setup);
}

} // namespace gaia
