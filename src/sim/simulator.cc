#include "sim/simulator.h"

#include <utility>

#include "common/logging.h"
#include "fault/injector.h"
#include "sim/driver.h"
#include "sim/online.h"

namespace gaia {

Status
validateSetup(const SimulationSetup &setup)
{
    GAIA_REQUIRE(setup.trace != nullptr,
                 "simulation setup has no job trace");
    GAIA_REQUIRE(setup.policy != nullptr,
                 "simulation setup has no policy");
    GAIA_REQUIRE(setup.queues != nullptr,
                 "simulation setup has no queue configuration");
    GAIA_REQUIRE(setup.cis != nullptr,
                 "simulation setup has no carbon source");
    if (setup.trace->jobCount() > 0) {
        // The carbon trace clamps out-of-range queries, so a
        // schedule running past its end would silently account the
        // last slot's intensity — reject horizons that cannot even
        // cover the arrivals.
        GAIA_REQUIRE(
            setup.cis->trace().duration() >
                setup.trace->lastArrival(),
            "carbon trace ends at ", setup.cis->trace().duration(),
            "s but the last job arrives at ",
            setup.trace->lastArrival(),
            "s; the job and carbon horizons do not match");
    }
    GAIA_TRY(validateClusterSetup(setup.cluster, setup.strategy));
    if (setup.faults != nullptr)
        GAIA_TRY(setup.faults->spec().validate());
    if (setup.elastic != nullptr)
        GAIA_TRY(setup.elastic->validate());
    return Status::ok();
}

Result<SimulationSetup>
SimulationSetup::Builder::build() const
{
    GAIA_TRY(validateSetup(setup_));
    return setup_;
}

Result<SimulationResult>
simulateChecked(const SimulationSetup &setup)
{
    GAIA_TRY(validateSetup(setup));

    // Batch mode: resolve the reservation horizon up front (it only
    // depends on the trace and queue limits, so every policy
    // compared on one scenario pays the same upfront cost), then
    // ride the virtual-clock driver over the online engine.
    ClusterConfig cluster = setup.cluster;
    const bool derived = cluster.reservation_horizon == 0;
    if (derived) {
        cluster.reservation_horizon =
            defaultReservationHorizon(*setup.trace, *setup.queues);
    }

    GAIA_TRY_ASSIGN(
        OnlineScheduler scheduler,
        OnlineScheduler::create(*setup.policy, *setup.queues,
                                *setup.cis, cluster, setup.strategy,
                                setup.trace->name(), setup.faults));
    scheduler.reserveJobs(setup.trace->jobCount());
    if (setup.elastic != nullptr)
        scheduler.setDefaultElasticProfile(*setup.elastic);
    VirtualClockDriver driver(scheduler);
    GAIA_TRY(driver.replay(*setup.trace));
    SimulationResult result = driver.finish();

    if (derived && setup.faults == nullptr) {
        // The derived horizon is a guarantee, not a user choice;
        // finishing past it would be an engine bug, which the
        // OnlineScheduler already treats as soft for explicit
        // horizons — re-assert strictly here. Faulted runs are
        // exempt: stretched, delayed, and storm-restarted jobs can
        // legitimately overrun a horizon derived from the nominal
        // trace.
        for (const JobOutcome &o : result.outcomes) {
            GAIA_ASSERT(o.finish <= result.horizon, "job ", o.id,
                        " finished past the derived horizon");
        }
    }
    return result;
}

SimulationResult
simulate(const SimulationSetup &setup)
{
    Result<SimulationResult> result = simulateChecked(setup);
    GAIA_ASSERT(result.isOk(),
                "simulate() on an invalid setup (use "
                "simulateChecked for untrusted input): ",
                result.status().message());
    return std::move(result).value();
}

SimulationResult
simulate(const JobTrace &trace, const SchedulingPolicy &policy,
         const QueueConfig &queues, const CarbonInfoSource &cis,
         const ClusterConfig &cluster, ResourceStrategy strategy)
{
    SimulationSetup setup;
    setup.trace = &trace;
    setup.policy = &policy;
    setup.queues = &queues;
    setup.cis = &cis;
    setup.cluster = cluster;
    setup.strategy = strategy;
    Result<SimulationResult> result = simulateChecked(setup);
    GAIA_ASSERT(result.isOk(),
                "simulate() on an invalid setup (use "
                "simulateChecked for untrusted input): ",
                result.status().message());
    return std::move(result).value();
}

} // namespace gaia
