#include "sim/simulator.h"

#include "common/logging.h"
#include "sim/online.h"

namespace gaia {

SimulationResult
simulate(const SimulationSetup &setup)
{
    GAIA_ASSERT(setup.trace != nullptr, "simulate() without a trace");
    GAIA_ASSERT(setup.policy != nullptr,
                "simulate() without a policy");
    GAIA_ASSERT(setup.queues != nullptr,
                "simulate() without queue configuration");
    GAIA_ASSERT(setup.cis != nullptr, "simulate() without a CIS");

    // Batch mode: resolve the reservation horizon up front (it only
    // depends on the trace and queue limits, so every policy
    // compared on one scenario pays the same upfront cost), feed
    // every job to the online engine, and run to completion.
    ClusterConfig cluster = setup.cluster;
    const bool derived = cluster.reservation_horizon == 0;
    if (derived) {
        cluster.reservation_horizon =
            defaultReservationHorizon(*setup.trace, *setup.queues);
    }

    OnlineScheduler scheduler(*setup.policy, *setup.queues,
                              *setup.cis, cluster, setup.strategy,
                              setup.trace->name());
    scheduler.reserveJobs(setup.trace->jobCount());
    for (const Job &job : setup.trace->jobs()) {
        // A JobTrace is sorted by submit time, so feeding it in
        // order can never submit into the past.
        const Status submitted = scheduler.submit(job);
        GAIA_ASSERT(submitted.isOk(), submitted.message());
    }
    scheduler.drain();
    SimulationResult result = scheduler.finalize();

    if (derived) {
        // The derived horizon is a guarantee, not a user choice;
        // finishing past it would be an engine bug, which the
        // OnlineScheduler already treats as soft for explicit
        // horizons — re-assert strictly here.
        for (const JobOutcome &o : result.outcomes) {
            GAIA_ASSERT(o.finish <= result.horizon, "job ", o.id,
                        " finished past the derived horizon");
        }
    }
    return result;
}

SimulationResult
simulate(const JobTrace &trace, const SchedulingPolicy &policy,
         const QueueConfig &queues, const CarbonInfoService &cis,
         const ClusterConfig &cluster, ResourceStrategy strategy)
{
    SimulationSetup setup;
    setup.trace = &trace;
    setup.policy = &policy;
    setup.queues = &queues;
    setup.cis = &cis;
    setup.cluster = cluster;
    setup.strategy = strategy;
    return simulate(setup);
}

} // namespace gaia
