/**
 * @file
 * Cluster configuration and resource-placement strategies.
 *
 * A scheduling policy fixes *when* a job computes; the resource
 * strategy fixes *where* — which purchase option backs each
 * execution segment — reproducing the paper's policy variants:
 * plain X, RES-First-X, Spot-First-X, and Spot-RES-X.
 */

#ifndef GAIA_SIM_CLUSTER_H
#define GAIA_SIM_CLUSTER_H

#include <cstdint>
#include <string>

#include "cloud/pricing.h"
#include "common/status.h"
#include "common/time.h"
#include "core/queues.h"
#include "workload/job.h"

namespace gaia {

/** How execution segments are mapped onto purchase options. */
enum class ResourceStrategy
{
    /**
     * Pure on-demand cluster (requires zero reserved cores) — the
     * setting of the paper's Figure 8.
     */
    OnDemandOnly,
    /**
     * Follow the plan exactly; back each segment with a reserved
     * core when one is free at that instant, on-demand otherwise.
     * This is the default hybrid behaviour (and what suspend-resume
     * policies get in hybrid clusters).
     */
    HybridGreedy,
    /**
     * The paper's work-conserving RES-First-X: start immediately on
     * arrival if reserved cores are free; otherwise wait for
     * min(planned start, first reserved availability); at the
     * planned start with no reserved capacity, fall back to
     * on-demand. Suspend-resume plans degrade to HybridGreedy.
     */
    ReservedFirst,
    /**
     * The paper's Spot-First-X: jobs short enough for the spot bound
     * run on spot at their planned times and restart on on-demand
     * (or a free reserved core) when evicted; longer jobs follow
     * HybridGreedy.
     */
    SpotFirst,
    /**
     * The paper's Spot-RES-X: short jobs follow SpotFirst, long jobs
     * follow ReservedFirst.
     */
    SpotReserved,
};

/** Display name, e.g. "RES-First". */
std::string strategyName(ResourceStrategy strategy);

/** Static description of the simulated cluster. */
struct ClusterConfig
{
    /** Size of the pre-paid reserved pool, in cores. */
    int reserved_cores = 0;
    /** Price structure across purchase options. */
    PricingModel pricing;
    /** Power model for carbon/energy accounting. */
    EnergyModel energy;
    /** Spot per-hour eviction probability in [0, 1]. */
    double spot_eviction_rate = 0.0;
    /**
     * Longest job admitted to spot instances (the paper's J^max
     * "scheduled on spot"); 0 disables spot entirely.
     */
    Seconds spot_max_length = 2 * kSecondsPerHour;
    /**
     * Instance initiation/termination overhead charged per
     * on-demand or spot acquisition (i.e. per non-reserved
     * execution segment). The paper's AWS prototype accounts "the
     * entire instance time, including initiation and termination";
     * its simulator neglects it (0, the default). Overhead time is
     * billed at the segment's rate and consumes energy/carbon at
     * the pre-start intensity, but performs no useful work — which
     * is precisely what penalizes suspend-resume fragmentation.
     */
    Seconds startup_overhead = 0;
    /**
     * Reservation contract horizon for the upfront cost; 0 derives
     * a trace-dependent default (see defaultReservationHorizon).
     * Experiments comparing policies must share one horizon.
     */
    Seconds reservation_horizon = 0;
    /**
     * Power drawn by an *idle* reserved core as a fraction of its
     * busy power. The paper assumes reserved instances are turned
     * off when idle (0, the default); real fleets often keep them
     * warm, in which case carbon-aware demand concentration leaves
     * idle reserved capacity burning energy during the very
     * high-carbon periods it avoided — a head-wind this knob
     * quantifies (see ablation_idle_power).
     */
    double reserved_idle_power_fraction = 0.0;
    /** Seed for eviction sampling. */
    std::uint64_t seed = 42;

    /** OK when all settings are individually in range. */
    Status validate() const;
};

/**
 * Full setup check: validate() plus strategy consistency (e.g.
 * OnDemandOnly clusters must not carry reserved cores). The
 * simulator asserts this holds; recoverable callers (CLI, sweeps)
 * check it first and report the Status.
 */
Status validateClusterSetup(const ClusterConfig &cluster,
                            ResourceStrategy strategy);

/**
 * Deterministic reservation horizon covering any schedule the given
 * trace and queue limits can produce: the busy horizon plus the
 * maximum waiting time, rounded up to whole days.
 */
Seconds defaultReservationHorizon(const JobTrace &trace,
                                  const QueueConfig &queues);

} // namespace gaia

#endif // GAIA_SIM_CLUSTER_H
