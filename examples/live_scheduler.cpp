/**
 * @file
 * Live scheduler — embedding GAIA in an online batch system.
 *
 * The paper deploys GAIA next to the Slurm master node, where it
 * intercepts submissions as they happen. This example drives the
 * same embedding surface (OnlineScheduler): jobs stream in over a
 * simulated day, the operator console logs every decision as it is
 * made (start now on reserved / wait for a cleaner slot / overflow
 * to on-demand), and the books close at the end of the day.
 */

#include <iostream>

#include "analysis/harness.h"
#include "common/rng.h"
#include "common/strings.h"
#include "common/table.h"
#include "core/policy_factory.h"
#include "sim/online.h"
#include "trace/region_model.h"
#include "workload/generators.h"

using namespace gaia;

int
main()
{
    // Grid, queues, policy, cluster — the operator's static setup.
    const CarbonTrace carbon =
        makeRegionTrace(Region::CaliforniaUS, 24 * 6, 7);
    const CarbonInfoService cis(carbon);
    QueueConfig queues = QueueConfig::standardShortLong();
    queues.calibrateAverages(makeWeekTrace(7)); // historical J_avg
    ClusterConfig cluster;
    cluster.reserved_cores = 4;
    const PolicyPtr policy = makePolicy("Carbon-Time");

    Result<OnlineScheduler> created = OnlineScheduler::create(
        *policy, queues, cis, cluster,
        ResourceStrategy::ReservedFirst, "live-demo");
    if (!created.isOk()) {
        std::cerr << "bad cluster setup: "
                  << created.status().message() << "\n";
        return 1;
    }
    OnlineScheduler scheduler = std::move(created).value();

    // A day of arrivals, streamed one at a time.
    Rng rng(7);
    std::vector<Job> arrivals;
    Seconds t = 0;
    JobId id = 0;
    while (true) {
        t += static_cast<Seconds>(rng.exponential(hours(1.2)));
        if (t >= kSecondsPerDay)
            break;
        arrivals.push_back(
            {id++, t,
             rng.uniformInt(20 * kSecondsPerMinute, hours(8)),
             static_cast<int>(rng.uniformInt(1, 2))});
    }

    std::cout << "Streaming " << arrivals.size()
              << " submissions through a 4-reserved-core cluster "
                 "(CA-US grid)...\n\n";
    for (const Job &job : arrivals) {
        scheduler.advanceTo(job.submit);
        const std::size_t before = scheduler.pendingJobs();
        const int busy_before = scheduler.reservedCoresInUse();
        const Status submitted = scheduler.submit(job);
        if (!submitted.isOk()) {
            std::cerr << "rejected: " << submitted.message() << "\n";
            continue;
        }
        scheduler.advanceTo(job.submit); // process the arrival

        std::cout << "[" << formatDuration(job.submit) << "] job "
                  << job.id << " (" << toHours(job.length)
                  << "h x" << job.cpus << ") @ "
                  << fmt(cis.intensityAt(job.submit), 0)
                  << " g/kWh -> ";
        if (scheduler.reservedCoresInUse() > busy_before) {
            std::cout << "started on reserved immediately "
                         "(work-conserving)\n";
        } else if (scheduler.pendingJobs() > before) {
            std::cout << "queued for reserved capacity\n";
        } else {
            std::cout << "scheduled for a cleaner slot\n";
        }
    }

    scheduler.drain();
    const SimulationResult r = scheduler.finalize();

    TextTable summary("End-of-day books", {"metric", "value"});
    summary.addRow({"jobs completed",
                    std::to_string(r.outcomes.size())});
    summary.addRow({"carbon (kg)", fmt(r.carbon_kg, 3)});
    summary.addRow({"vs run-immediately (kg)",
                    fmt(r.carbon_nowait_kg, 3)});
    summary.addRow({"total cost ($)", fmt(r.totalCost(), 2)});
    summary.addRow({"mean wait (h)",
                    fmt(r.meanWaitingHours(), 2)});
    summary.addRow({"reserved utilization",
                    fmt(r.reserved_utilization, 2)});
    summary.print(std::cout);
    return 0;
}
