/**
 * @file
 * Capacity planner — pick a reserved-instance count for your
 * workload.
 *
 * The paper's Section 4.2.3 describes three operating regimes for
 * reserved capacity: below base demand (free cost savings, regime
 * 1), between base and mean demand (a configurable carbon-cost
 * trade-off, regime 2), and beyond the cost-break-even point
 * (always bad, regime 3). This tool sweeps the reserved count under
 * the work-conserving RES-First-Carbon-Time policy, prints the
 * frontier, and labels the regimes, reproducing the §7 guidance
 * ("reserve between the base and the mean demand").
 */

#include <algorithm>
#include <iostream>

#include "analysis/frontier.h"
#include "analysis/harness.h"
#include "analysis/parallel.h"
#include "common/stats.h"
#include "common/strings.h"
#include "common/table.h"
#include "trace/region_model.h"
#include "workload/generators.h"
#include "workload/trace_stats.h"

using namespace gaia;

int
main()
{
    // Your workload and region would be loaded from CSV here.
    const JobTrace trace = makeWeekTrace(7);
    const CarbonTrace carbon = makeRegionTrace(
        Region::CaliforniaUS, 24 * 13, 7);
    const CarbonInfoService cis(carbon);
    const QueueConfig queues = calibratedQueues(trace);

    // Demand statistics frame the regimes.
    const auto series = demandSeries(trace, kSecondsPerHour);
    const double base_demand = percentile(series, 10.0);
    const DemandStats demand = demandStats(trace);
    std::cout << "Demand: base (p10) " << fmt(base_demand, 1)
              << " cores, mean " << fmt(demand.mean, 1)
              << ", peak " << fmt(demand.peak, 1) << ", CoV "
              << fmt(demand.cov, 2) << "\n";

    const SimulationResult on_demand_only =
        runPolicy("NoWait", trace, queues, cis);

    std::vector<int> sweep;
    const int mean_demand = static_cast<int>(demand.mean + 0.5);
    for (int r = 0; r <= 2 * mean_demand; r += 2)
        sweep.push_back(r);

    std::vector<SimulationResult> results(sweep.size());
    parallelFor(sweep.size(), [&](std::size_t i) {
        ClusterConfig cluster;
        cluster.reserved_cores = sweep[i];
        results[i] = runPolicy(
            "Carbon-Time", trace, queues, cis, cluster,
            sweep[i] == 0 ? ResourceStrategy::OnDemandOnly
                          : ResourceStrategy::ReservedFirst);
    });

    // Locate the cost minimum to mark regime 3.
    std::size_t best = 0;
    for (std::size_t i = 0; i < results.size(); ++i) {
        if (results[i].totalCost() < results[best].totalCost())
            best = i;
    }

    TextTable table("Reserved-capacity frontier "
                    "(RES-First-Carbon-Time)",
                    {"reserved", "cost vs on-demand",
                     "carbon vs on-demand", "wait (h)", "regime"});
    for (std::size_t i = 0; i < sweep.size(); ++i) {
        std::string regime;
        if (sweep[i] <= base_demand)
            regime = "1: free savings";
        else if (i <= best)
            regime = "2: carbon-cost trade-off";
        else
            regime = "3: avoid (past break-even)";
        table.addRow(
            {std::to_string(sweep[i]),
             fmtPercent(results[i].totalCost() /
                            on_demand_only.totalCost() -
                        1.0),
             fmtPercent(results[i].carbon_kg /
                            on_demand_only.carbon_kg -
                        1.0),
             fmt(results[i].meanWaitingHours(), 2), regime});
    }
    table.print(std::cout);

    std::cout
        << "\nRecommendation: reserve between "
        << fmt(base_demand, 0) << " (base demand) and "
        << sweep[best]
        << " (cost minimum) cores. Fewer instances inside that "
           "range buy extra carbon savings for a few percent of "
           "cost; more never pays.\n";

    // Offer only the Pareto-optimal configurations, knee first.
    std::vector<MetricsRow> rows;
    for (std::size_t i = 0; i < sweep.size(); ++i) {
        rows.push_back(metricsOf("R=" + std::to_string(sweep[i]),
                                 results[i]));
    }
    const auto frontier = paretoFrontier(rows);
    const std::size_t knee = kneePoint(rows, frontier);
    std::cout << "\nCarbon-cost Pareto frontier:";
    for (std::size_t idx : frontier) {
        std::cout << " " << rows[idx].label
                  << (idx == knee ? "*" : "");
    }
    std::cout << "  (* = knee — the balanced pick)\n";
    return 0;
}
