/**
 * @file
 * Sustainability report — a year of carbon accounting for a
 * cluster, the report an operator would attach to an ESG filing.
 *
 * Runs a year-long workload twice (carbon-agnostic NoWait versus
 * GAIA's Carbon-Time) and breaks carbon, avoided emissions, energy,
 * and cost down by calendar month, demonstrating the accounting
 * layer's per-job attribution and the seasonal structure (savings
 * track the grid's variability through the year).
 */

#include <array>
#include <iostream>

#include "analysis/harness.h"
#include "common/strings.h"
#include "common/table.h"
#include "trace/region_model.h"
#include "workload/generators.h"

using namespace gaia;

namespace {

/** Per-month accumulation of one run's outcomes (by start time). */
struct MonthlyBook
{
    std::array<double, 12> carbon_g{};
    std::array<double, 12> cost{};
    std::array<int, 12> jobs{};
};

MonthlyBook
bookOf(const SimulationResult &result)
{
    MonthlyBook book;
    for (const JobOutcome &o : result.outcomes) {
        const auto m = static_cast<std::size_t>(monthOf(o.start));
        book.carbon_g[m] += o.carbon_g;
        book.cost[m] += o.variable_cost;
        book.jobs[m] += 1;
    }
    return book;
}

} // namespace

int
main()
{
    // A year of the ML cluster in South Australia. Scale the job
    // count down a little so the example runs in a few seconds.
    TraceBuildOptions options;
    options.job_count = 30000;
    options.span = kSecondsPerYear;
    options.seed = 2026;
    const JobTrace trace =
        buildTrace(WorkloadSource::AlibabaPai, options).value();
    const CarbonTrace carbon = makeRegionTrace(
        Region::SouthAustralia,
        static_cast<std::size_t>(kHoursPerYear) + 24 * 8, 2026);
    const CarbonInfoService cis(carbon);
    const QueueConfig queues = calibratedQueues(trace);

    const SimulationResult baseline =
        runPolicy("NoWait", trace, queues, cis);
    const SimulationResult green =
        runPolicy("Carbon-Time", trace, queues, cis);

    const MonthlyBook base_book = bookOf(baseline);
    const MonthlyBook green_book = bookOf(green);

    TextTable table("Monthly sustainability report (SA-AU)",
                    {"month", "jobs", "baseline kg", "GAIA kg",
                     "avoided kg", "avoided %"});
    for (int m = 0; m < 12; ++m) {
        const auto i = static_cast<std::size_t>(m);
        const double base_kg = base_book.carbon_g[i] / 1000.0;
        const double green_kg = green_book.carbon_g[i] / 1000.0;
        const double avoided = base_kg - green_kg;
        table.addRow(
            {monthName(m), std::to_string(green_book.jobs[i]),
             fmt(base_kg, 1), fmt(green_kg, 1), fmt(avoided, 1),
             base_kg > 0.0 ? fmtPercent(avoided / base_kg)
                           : "n/a"});
    }
    table.print(std::cout);

    const double total_avoided = baseline.carbon_kg -
                                 green.carbon_kg;
    std::cout << "\nAnnual summary: "
              << fmt(green.carbon_kg, 0) << " kg emitted vs "
              << fmt(baseline.carbon_kg, 0)
              << " kg carbon-agnostic (" << fmt(total_avoided, 0)
              << " kg avoided, "
              << fmtPercent(total_avoided / baseline.carbon_kg)
              << ") at " << fmt(green.meanWaitingHours(), 1)
              << " h mean waiting and no change in the cloud bill "
                 "(" << fmt(green.totalCost(), 0) << " $ vs "
              << fmt(baseline.totalCost(), 0) << " $).\n"
              << "Energy: " << fmt(green.energy_kwh, 0)
              << " kWh. Equivalent offsets at $100/t: $"
              << fmt(total_avoided / 1000.0 * 100.0, 0) << ".\n";
    return 0;
}
