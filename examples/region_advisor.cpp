/**
 * @file
 * Region advisor — where (and how long to wait) should a workload
 * run for real carbon reductions?
 *
 * Reproduces the paper's §6.4.3 guidance as a decision tool: for
 * each candidate region it reports the normalized and *absolute*
 * carbon savings of Carbon-Time scheduling plus the waiting cost,
 * and flags that users should compare total kilograms rather than
 * percentages. It also sweeps the long-queue waiting limit for the
 * chosen region to expose the knee the paper recommends (~12 h).
 */

#include <iostream>

#include "analysis/harness.h"
#include "analysis/parallel.h"
#include "common/strings.h"
#include "common/table.h"
#include "trace/region_model.h"
#include "workload/generators.h"

using namespace gaia;

int
main()
{
    const JobTrace trace = makeWeekTrace(21);
    const QueueConfig queues = calibratedQueues(trace);
    const std::vector<Region> &regions = evaluationRegions();

    struct RegionReport
    {
        double normalized = 0.0;
        double saved_kg = 0.0;
        double wait_h = 0.0;
    };
    std::vector<RegionReport> reports(regions.size());
    parallelFor(regions.size(), [&](std::size_t i) {
        const CarbonTrace carbon =
            makeRegionTrace(regions[i], 24 * 13, 21);
        const CarbonInfoService cis(carbon);
        const SimulationResult nowait =
            runPolicy("NoWait", trace, queues, cis);
        const SimulationResult ct =
            runPolicy("Carbon-Time", trace, queues, cis);
        reports[i] = {ct.carbon_kg / nowait.carbon_kg,
                      nowait.carbon_kg - ct.carbon_kg,
                      ct.meanWaitingHours()};
    });

    TextTable table("Carbon-Time savings by region (one week)",
                    {"region", "normalized carbon", "saved kg",
                     "wait (h)"});
    std::size_t best_total = 0;
    for (std::size_t i = 0; i < regions.size(); ++i) {
        table.addRow(regionName(regions[i]),
                     {reports[i].normalized, reports[i].saved_kg,
                      reports[i].wait_h});
        if (reports[i].saved_kg > reports[best_total].saved_kg)
            best_total = i;
    }
    table.print(std::cout);
    std::cout << "\nLargest absolute reduction: "
              << regionName(regions[best_total]) << " ("
              << fmt(reports[best_total].saved_kg, 1)
              << " kg). Judge regions by kilograms, not "
                 "percentages.\n";

    // Waiting-limit knee for the selected region (§7 guidance).
    const Region chosen = regions[best_total];
    const CarbonTrace carbon = makeRegionTrace(chosen, 24 * 16, 21);
    const CarbonInfoService cis(carbon);
    const SimulationResult nowait =
        runPolicy("NoWait", trace, queues, cis);

    TextTable knee("Long-queue waiting limit sweep ("
                       + regionName(chosen) + ")",
                   {"W_long (h)", "saved kg", "wait (h)",
                    "kg per wait-hour"});
    for (Seconds w : {hours(3), hours(6), hours(12), hours(24),
                      hours(48), hours(72)}) {
        const QueueConfig swept =
            calibratedQueues(trace, hours(6), w);
        const SimulationResult r =
            runPolicy("Carbon-Time", trace, swept, cis);
        const double saved = nowait.carbon_kg - r.carbon_kg;
        const double wait = r.meanWaitingHours();
        knee.addRow(fmt(toHours(w), 0),
                    {saved, wait, wait > 0 ? saved / wait : 0.0});
    }
    knee.print(std::cout);
    std::cout << "\nThe per-hour yield drops past the knee — the "
                 "paper recommends W_long around 12 h as the "
                 "carbon/performance balance.\n";
    return 0;
}
