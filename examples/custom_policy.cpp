/**
 * @file
 * Custom policy — extend GAIA with your own scheduling objective.
 *
 * GAIA's scheduler is a small interface: implement
 * SchedulingPolicy::plan() and the simulator, accounting, and
 * harness work unchanged. This example implements the
 * *energy-price-aware* policy the paper's discussion section
 * motivates (Figure 20): private-cloud operators pay wholesale
 * energy prices that are only weakly correlated with carbon
 * intensity (ERCOT: rho = 0.16), so a price-optimal schedule is not
 * a carbon-optimal one. PriceAwarePolicy starts each job in the
 * cheapest J_avg-long window, and the comparison below quantifies
 * the carbon-vs-energy-cost tension on an ERCOT-like market.
 */

#include <iostream>
#include <limits>
#include <utility>

#include "analysis/harness.h"
#include "common/logging.h"
#include "common/strings.h"
#include "common/table.h"
#include "core/policies.h"
#include "trace/price_trace.h"
#include "workload/generators.h"

using namespace gaia;

namespace {

/** Starts jobs in the cheapest electricity-price window. */
class PriceAwarePolicy final : public SchedulingPolicy
{
  public:
    explicit PriceAwarePolicy(const PriceTrace &prices)
        : prices_(prices)
    {
    }

    std::string name() const override { return "Price-Aware"; }
    LengthKnowledge lengthKnowledge() const override
    {
        return LengthKnowledge::QueueAverage;
    }

    SchedulePlan
    plan(const Job &job, const PlanContext &ctx) const override
    {
        const Seconds j_avg = ctx.queue->effectiveAvgLength();
        Seconds best_start = ctx.now;
        double best_cost = std::numeric_limits<double>::infinity();
        for (Seconds s :
             candidateStarts(ctx.now, ctx.queue->max_wait)) {
            double cost = 0.0;
            for (Seconds t = s; t < s + j_avg;
                 t += kSecondsPerHour) {
                const Seconds step =
                    std::min(kSecondsPerHour, s + j_avg - t);
                cost += prices_.at(t) * static_cast<double>(step);
            }
            if (cost < best_cost) {
                best_cost = cost;
                best_start = s;
            }
        }
        return SchedulePlan(best_start, job.length);
    }

  private:
    const PriceTrace &prices_;
};

/** Mean wholesale energy price paid per core-hour of execution. */
double
meanEnergyPrice(const SimulationResult &result,
                const PriceTrace &prices)
{
    double weighted = 0.0, core_seconds = 0.0;
    for (const JobOutcome &o : result.outcomes) {
        for (const PlacedSegment &seg : o.segments) {
            for (Seconds t = seg.start; t < seg.end;
                 t += kSecondsPerHour) {
                const Seconds step =
                    std::min(kSecondsPerHour, seg.end - t);
                weighted += prices.at(t) *
                            static_cast<double>(step) * o.cpus;
                core_seconds +=
                    static_cast<double>(step) * o.cpus;
            }
        }
    }
    return core_seconds > 0.0 ? weighted / core_seconds : 0.0;
}

} // namespace

int
main()
{
    const JobTrace trace = makeWeekTrace(11);
    const QueueConfig queues = calibratedQueues(trace);

    // Joint carbon/price series for a Texas-like market.
    const GridMarketTrace market = makeErcotTrace(24 * 13, 11);
    const CarbonInfoService cis(market.carbon);

    const PriceAwarePolicy price_aware(market.price);
    const CarbonTimePolicy carbon_time;
    const NoWaitPolicy no_wait;

    TextTable table("Carbon vs energy-price optimization (ERCOT)",
                    {"policy", "carbon (kg)", "mean $/MWh paid",
                     "wait (h)"});
    for (const SchedulingPolicy *policy :
         std::initializer_list<const SchedulingPolicy *>{
             &no_wait, &carbon_time, &price_aware}) {
        const Result<SimulationSetup> setup =
            SimulationSetup::Builder()
                .trace(trace)
                .policy(*policy)
                .queues(queues)
                .cis(cis)
                .build();
        if (!setup.isOk())
            fatal("simulation setup rejected: ",
                  setup.status().message());
        Result<SimulationResult> checked = simulateChecked(*setup);
        if (!checked.isOk())
            fatal("simulation failed: ",
                  checked.status().message());
        const SimulationResult r = std::move(checked).value();
        table.addRow(policy->name(),
                     {r.carbon_kg,
                      meanEnergyPrice(r, market.price),
                      r.meanWaitingHours()});
    }
    table.print(std::cout);

    std::cout
        << "\nWith weak price-carbon correlation, the price-aware "
           "schedule pays the least for energy but leaves carbon "
           "on the table, and vice versa — the paper's Figure 20 "
           "tension. Implementing a policy took ~30 lines.\n";
    return 0;
}
