/**
 * @file
 * Quickstart — schedule a week of batch jobs carbon-aware.
 *
 * Demonstrates the minimal GAIA workflow:
 *   1. get a workload trace (here: the calibrated Alibaba-PAI
 *      week-long sample; JobTrace::fromCsv loads your own),
 *   2. get a carbon-intensity trace (here: the South Australia
 *      model; CarbonTrace::fromCsv loads ElectricityMaps data),
 *   3. configure queues, pick a policy, simulate,
 *   4. read carbon / cost / waiting out of the result.
 *
 * Build and run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <iostream>

#include "analysis/harness.h"
#include "common/strings.h"
#include "common/table.h"
#include "trace/region_model.h"
#include "workload/generators.h"

using namespace gaia;

int
main()
{
    // 1. A week-long, 1000-job ML-cluster workload.
    const JobTrace trace = makeWeekTrace(/*seed=*/42);
    std::cout << "Workload: " << trace.jobCount() << " jobs, mean "
              << fmt(trace.meanDemand(), 1)
              << " concurrent CPUs\n";

    // 2. Hourly grid carbon intensity for the scheduling horizon.
    const CarbonTrace carbon = makeRegionTrace(
        Region::SouthAustralia, 24 * 13, /*seed=*/42);
    const CarbonInfoService cis(carbon);

    // 3. The paper's standard queues: short jobs (<=2 h) may wait
    //    6 h, long jobs 24 h; J_avg calibrated from history.
    const QueueConfig queues = calibratedQueues(trace);

    // 4. Compare the carbon-agnostic baseline with GAIA's
    //    carbon+performance-aware policy.
    const SimulationResult baseline =
        runPolicy("NoWait", trace, queues, cis);
    const SimulationResult gaia_run =
        runPolicy("Carbon-Time", trace, queues, cis);

    TextTable table("NoWait vs Carbon-Time",
                    {"metric", "NoWait", "Carbon-Time"});
    table.addRow("carbon (kg CO2eq)",
                 {baseline.carbon_kg, gaia_run.carbon_kg});
    table.addRow("cost ($)",
                 {baseline.totalCost(), gaia_run.totalCost()});
    table.addRow("mean waiting (h)",
                 {baseline.meanWaitingHours(),
                  gaia_run.meanWaitingHours()});
    table.addRow("p95 waiting (h)",
                 {baseline.p95WaitingHours(),
                  gaia_run.p95WaitingHours()});
    table.print(std::cout);

    std::cout << "\nCarbon-Time saved "
              << fmt(100.0 * (1.0 - gaia_run.carbon_kg /
                                        baseline.carbon_kg),
                     1)
              << "% carbon for "
              << fmt(gaia_run.meanWaitingHours(), 1)
              << " h of average waiting.\n";
    return 0;
}
